"""Round-loop throughput of the simulation engines (rounds/sec).

Measures the registered engines against each other on workloads built
through the scenario layer:

* **flooding** — extremum flood on a random regular graph: the
  saturated-broadcast hot path (every node transmits in round 1, traffic
  decays as the extremum spreads). Two regimes:

  - n ≤ 1000 rows stay 8-regular, continuous with the sweeps of earlier
    revisions;
  - the n = 2000/5000 scale rows run 128-regular — the dense regime the
    columnar message plane targets (the all-to-all traffic of the
    queued clique-listing/spanner workloads is the limit of it), where
    per-delivery costs dominate and engine differences are real rather
    than fixed-cost noise. Every row records its ``degree``.

  Runs ``indexed`` vs ``reference`` vs ``vectorized`` (the columnar
  numpy engine, where numpy imports) vs ``sharded`` (the multiprocess
  engine, where the platform can fork); the reference loop is only
  timed up to n = 1000 — past that it only slows the sweep down without
  informing it.
* **shared-mst** — :func:`simultaneous_msts` over a 2-part Karger edge
  partition: the composite Lemma 5.1 workload (subgraph floods, BFS,
  pipelined upcast) that chains many simulations end to end.

The sharded engine additionally gets its own **shard-count sweep**
(E29): dense-flooding ``flooding-sharded`` rows timing the columnar
workers against ``indexed`` per shard count, each recording that
count's ``vectorized_speedup`` (the workers run the vectorized
columnar inner loop, so the row measures how the columnar plane scales
across the barrier). The indexed baseline of these rows is always
timed, ``--engines`` filter or not — the speedup is the row's point.

Acceptance gates (non-quick runs, E26/E28/E29):

* sharded: ≥ 1.5× rounds/sec over ``indexed`` at flooding n = 5000 on
  the largest shard count — asserted only when ≥ 4 **schedulable**
  cores are detected (``len(os.sched_getaffinity(0))``, not the host's
  ``os.cpu_count()``); affinity-limited boxes still record the rows
  honestly (the ``workers`` field says what ran).
* vectorized: **≥ 3× rounds/sec over ``indexed`` at flooding n = 5000**
  — asserted whenever both engines run the row, so a regression fails
  the bench loudly.

Every row asserts identical outputs and round counts across engines
(the equivalence suites pin full bit-identity; this bench pins speed).

``--engines`` filters the timed engines (comma-separated); unknown
names fail with the engine registry's own listing message.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite simulator
    PYTHONPATH=src python benchmarks/bench_simulator.py            # direct

Results land in ``BENCH_simulator.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The reference loop is a correctness oracle, not a contender; past
#: this n it is dropped from the timing sweep.
REFERENCE_MAX_N = 1000

#: Scale rows (n > this) run the dense regime targeted by the columnar
#: plane; smaller rows keep the historical sparse sweep.
SPARSE_MAX_N = 1000
SPARSE_DEGREE = 8
DENSE_DEGREE = 128

#: The E28 gate: vectorized rounds/sec over indexed at flooding n=5000.
VECTORIZED_GATE_N = 5000
VECTORIZED_GATE_SPEEDUP = 3.0

#: The E29 gate: columnar sharded workers over indexed at flooding
#: n=5000 on the largest shard count — enforced only with >= 4
#: schedulable cores (affinity mask, not host CPU count).
SHARDED_GATE_N = 5000
SHARDED_GATE_SPEEDUP = 1.5
SHARDED_GATE_MIN_CPUS = 4


def _flood_sizes(quick: bool):
    return (24, 60) if quick else (100, 500, 1000, 2000, 5000)


def _flood_degree(n: int) -> int:
    return SPARSE_DEGREE if n <= SPARSE_MAX_N else DENSE_DEGREE


def _mst_sizes(quick: bool):
    return (24, 60) if quick else (100, 500, 1000)


def _default_workers() -> int:
    # Schedulable cores, not host cores: an affinity-limited container
    # must not fork workers for CPUs it cannot run on.
    from repro.simulator.runner_sharded import schedulable_cpus

    return max(1, min(schedulable_cpus(), 4))


def _sharded_shard_counts(quick: bool):
    """Shard counts for the dense sharded scaling sweep (E29)."""
    return (2,) if quick else (2, 4)


def _flood_engines(workers: int):
    from repro.simulator.runner_sharded import fork_available
    from repro.simulator.runner_vectorized import numpy_available

    engines = ["indexed", "reference"]
    if numpy_available():
        engines.append("vectorized")
    if fork_available() and workers >= 1:
        engines.append("sharded")
    return engines


def resolve_engine_filter(spec: Optional[str]) -> Optional[List[str]]:
    """Parse a comma-separated ``--engines`` filter.

    Each name is validated through the runner registry, so a typo fails
    with the same engine-listing message ``SyncRunner`` itself gives.
    """
    if spec is None:
        return None
    from repro.simulator.runner import _require_engine

    engines = [name.strip() for name in spec.split(",") if name.strip()]
    if not engines:
        raise ValueError("--engines got an empty engine list")
    for name in engines:
        _require_engine(name)  # SimulationError lists registered engines
    return engines


def _flood_rounds_per_sec(
    graph, engine: str, repeats: int, seed: int, workers: Optional[int]
):
    """Total rounds / total wall seconds over ``repeats`` runs (network
    built once; only the round loop — including, for the sharded
    engine, its fork/barrier overhead — is timed)."""
    from repro.simulator.algorithms.flooding import ExtremumFloodProgram
    from repro.simulator.network import Network
    from repro.simulator.runner import SyncRunner

    network = Network(graph, rng=seed)
    factory = lambda v: ExtremumFloodProgram(network.node_id(v))  # noqa: E731
    shards = workers if engine == "sharded" else None

    def once():
        return SyncRunner(
            network, rng=seed, engine=engine, shards=shards
        ).run(factory)

    once()  # warmup (also builds the vectorized plane cache)
    rounds = 0
    start = time.perf_counter()
    for _ in range(repeats):
        result = once()
        rounds += result.metrics.rounds
    elapsed = time.perf_counter() - start
    return rounds, elapsed, result.outputs


def _shared_mst_rounds_per_sec(graph, engine: str, seed: int):
    from repro.graphs.sampling import karger_edge_partition
    from repro.simulator.algorithms.shared_mst import simultaneous_msts
    from repro.simulator.network import Network
    from repro.simulator.runner import engine_context
    from repro.utils.rng import ensure_rng

    with engine_context(engine):
        network = Network(graph, rng=seed)
        parts = karger_edge_partition(graph, 2, ensure_rng(seed + 1))
        start = time.perf_counter()
        result = simultaneous_msts(network, parts)
        elapsed = time.perf_counter() - start
    rounds = result.fragment_rounds + result.completion_rounds
    return rounds, elapsed, result.forests


def _engine_cell(rounds: int, elapsed: float) -> Dict:
    return {
        "rounds": rounds,
        "seconds": round(elapsed, 6),
        "rounds_per_sec": round(rounds / max(elapsed, 1e-9), 1),
    }


def _speedup(per_engine: Dict, engine: str, baseline: str = "indexed"):
    return round(
        per_engine[engine]["rounds_per_sec"]
        / per_engine[baseline]["rounds_per_sec"],
        2,
    )


def run(
    quick: bool = False,
    repeats: int = 10,
    seed: int = 3,
    workers: Optional[int] = None,
    engines: Optional[Sequence[str]] = None,
) -> Dict:
    from repro.graphs.generators import random_regular_connected

    if workers is None:
        workers = _default_workers()
    rows: List[Dict] = []

    # -- flooding: the engine shoot-out, up to the E26/E28 scale points --
    flood_engines = _flood_engines(workers)
    if engines is not None:
        flood_engines = [e for e in flood_engines if e in engines]
    for n in _flood_sizes(quick):
        degree = _flood_degree(n) if not quick else SPARSE_DEGREE
        graph = random_regular_connected(degree, n, rng=1)
        # Big graphs amortize fixed costs already; fewer repeats keep
        # the sweep honest without an hour of reference-loop time.
        n_repeats = repeats if n <= 1000 else max(2, repeats // 3)
        row_engines = [
            engine
            for engine in flood_engines
            if engine != "reference" or n <= REFERENCE_MAX_N
        ]
        if not row_engines:
            continue  # filter excluded every engine for this row
        per_engine = {}
        payloads = {}
        for engine in row_engines:
            rounds, elapsed, payload = _flood_rounds_per_sec(
                graph, engine, n_repeats, seed, workers
            )
            per_engine[engine] = _engine_cell(rounds, elapsed)
            payloads[engine] = payload
        if "indexed" in per_engine:
            for engine in row_engines:
                if engine == "indexed":
                    continue
                if payloads[engine] != payloads["indexed"]:
                    raise AssertionError(
                        f"flooding n={n}: {engine} disagrees with indexed "
                        "on outputs"
                    )
                assert (
                    per_engine[engine]["rounds"]
                    == per_engine["indexed"]["rounds"]
                ), f"flooding n={n}: {engine} disagrees on round counts"
        row = {
            "program": "flooding",
            "n": n,
            "degree": degree,
            "m": graph.number_of_edges(),
            "seed": seed,
            "repeats": n_repeats,
            "rounds": per_engine[row_engines[0]]["rounds"],
            **per_engine,
        }
        if "reference" in per_engine and "indexed" in per_engine:
            row["speedup"] = _speedup(per_engine, "indexed", "reference")
        if "vectorized" in per_engine and "indexed" in per_engine:
            row["vectorized_speedup"] = _speedup(per_engine, "vectorized")
        if "sharded" in per_engine:
            row["workers"] = workers
            if "indexed" in per_engine:
                row["sharded_speedup"] = _speedup(per_engine, "sharded")
        rows.append(row)
        if (
            not quick
            and n == VECTORIZED_GATE_N
            and "vectorized_speedup" in row
        ):
            # The E28 acceptance gate: a columnar-plane regression must
            # fail the bench, not just lower a number in a JSON file.
            assert row["vectorized_speedup"] >= VECTORIZED_GATE_SPEEDUP, (
                f"vectorized gate failed: {row['vectorized_speedup']}x < "
                f"{VECTORIZED_GATE_SPEEDUP}x over indexed on flooding "
                f"n={n} (degree {degree})"
            )

    # -- dense sharded scaling: the columnar barrier per shard count ---
    # One row per (n, shard count): the forked workers run the
    # vectorized columnar inner loop, so sharded-vs-indexed here is the
    # per-shard-count speedup of the columnar plane across the barrier.
    # The indexed baseline is always timed in this sweep (the filter
    # selects which engines *compete*; the sweep's point is the ratio).
    if "sharded" in flood_engines:
        from repro.simulator.runner_sharded import schedulable_cpus

        for n in (60,) if quick else (2000, 5000):
            degree = SPARSE_DEGREE if quick else DENSE_DEGREE
            graph = random_regular_connected(degree, n, rng=1)
            n_repeats = repeats if quick or n <= 1000 else max(
                2, repeats // 3
            )
            idx_rounds, idx_elapsed, idx_payload = _flood_rounds_per_sec(
                graph, "indexed", n_repeats, seed, None
            )
            idx_cell = _engine_cell(idx_rounds, idx_elapsed)
            for shard_count in _sharded_shard_counts(quick):
                rounds, elapsed, payload = _flood_rounds_per_sec(
                    graph, "sharded", n_repeats, seed, shard_count
                )
                if payload != idx_payload:
                    raise AssertionError(
                        f"flooding-sharded n={n} workers={shard_count}: "
                        "sharded disagrees with indexed on outputs"
                    )
                assert rounds == idx_rounds, (
                    f"flooding-sharded n={n} workers={shard_count}: "
                    "sharded disagrees on round counts"
                )
                per_engine = {
                    "indexed": idx_cell,
                    "sharded": _engine_cell(rounds, elapsed),
                }
                row = {
                    "program": "flooding-sharded",
                    "n": n,
                    "degree": degree,
                    "m": graph.number_of_edges(),
                    "seed": seed,
                    "repeats": n_repeats,
                    "rounds": idx_rounds,
                    "workers": shard_count,
                    **per_engine,
                    "vectorized_speedup": _speedup(per_engine, "sharded"),
                }
                rows.append(row)
                if (
                    not quick
                    and n == SHARDED_GATE_N
                    and shard_count == max(_sharded_shard_counts(quick))
                    and schedulable_cpus() >= SHARDED_GATE_MIN_CPUS
                ):
                    # The E29 acceptance gate — only where the workers
                    # actually have cores to scale onto.
                    assert (
                        row["vectorized_speedup"] >= SHARDED_GATE_SPEEDUP
                    ), (
                        f"sharded gate failed: {row['vectorized_speedup']}x"
                        f" < {SHARDED_GATE_SPEEDUP}x over indexed on "
                        f"flooding n={n} with {shard_count} workers"
                    )

    # -- shared-mst: the composite workload (single-process engines) ---
    mst_engines = ["indexed", "reference"]
    if "vectorized" in flood_engines:
        mst_engines.append("vectorized")
    if engines is not None:
        mst_engines = [e for e in mst_engines if e in engines]
    for n in _mst_sizes(quick) if mst_engines else ():
        graph = random_regular_connected(SPARSE_DEGREE, n, rng=1)
        per_engine = {}
        payloads = {}
        for engine in mst_engines:
            rounds, elapsed, payload = _shared_mst_rounds_per_sec(
                graph, engine, seed
            )
            per_engine[engine] = _engine_cell(rounds, elapsed)
            payloads[engine] = payload
        if "indexed" in per_engine:
            for engine in mst_engines:
                if engine == "indexed":
                    continue
                if payloads[engine] != payloads["indexed"]:
                    raise AssertionError(
                        f"shared-mst n={n}: {engine} disagrees with indexed "
                        "on outputs"
                    )
                assert (
                    per_engine[engine]["rounds"]
                    == per_engine["indexed"]["rounds"]
                ), f"shared-mst n={n}: {engine} disagrees on round counts"
        row = {
            "program": "shared-mst",
            "n": n,
            "degree": SPARSE_DEGREE,
            "m": graph.number_of_edges(),
            "seed": seed,
            "rounds": per_engine[mst_engines[0]]["rounds"],
            **per_engine,
        }
        if "reference" in per_engine and "indexed" in per_engine:
            row["speedup"] = _speedup(per_engine, "indexed", "reference")
        if "vectorized" in per_engine and "indexed" in per_engine:
            row["vectorized_speedup"] = _speedup(per_engine, "vectorized")
        rows.append(row)
    from repro.simulator.runner_sharded import schedulable_cpus

    return {
        "benchmark": "simulator_round_loop",
        "unit": "rounds per wall-clock second (outputs asserted identical)",
        "engines": flood_engines,
        "flood_repeats": repeats,
        "workers": workers,
        # Both counts, deliberately: cpu_count is the host's logical
        # CPUs, schedulable_cpus the affinity mask this process actually
        # runs on — worker sizing and the E29 gate use the latter.
        "cpu_count": os.cpu_count(),
        "schedulable_cpus": schedulable_cpus(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def smoke() -> None:
    """Tiny end-to-end run for the tier-1 bench_smoke marker."""
    from repro.simulator.runner_sharded import fork_available

    report = run(quick=True, repeats=2, workers=2)
    assert report["results"], "simulator bench produced no rows"
    assert report["schedulable_cpus"] >= 1
    for row in report["results"]:
        assert row["rounds"] > 0
        assert row["indexed"]["rounds_per_sec"] > 0
        if "sharded" in row:
            assert row["sharded"]["rounds_per_sec"] > 0
        if "vectorized" in row:
            assert row["vectorized"]["rounds_per_sec"] > 0
    if fork_available():
        # The shard-count sweep must produce at least one genuinely
        # multi-worker columnar row.
        assert any(
            row["program"] == "flooding-sharded" and row["workers"] >= 2
            for row in report["results"]
        ), "no multi-shard columnar row in the sweep"
    # The --engines filter path: a single-engine run and a typo.
    filtered = run(
        quick=True, repeats=1, workers=1,
        engines=resolve_engine_filter("indexed"),
    )
    for row in filtered["results"]:
        assert "indexed" in row and "reference" not in row
    try:
        resolve_engine_filter("indexed,no-such-engine")
    except Exception as exc:
        assert "no-such-engine" in str(exc)
    else:  # pragma: no cover - the registry must reject typos
        raise AssertionError("engine typo was not rejected")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny graphs")
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="sharded-engine worker count (default: one per schedulable "
             "core, max 4)",
    )
    parser.add_argument(
        "--engines", type=str, default=None,
        help="comma-separated engine filter (e.g. 'indexed,vectorized')",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_simulator.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    try:
        engine_filter = resolve_engine_filter(args.engines)
    except Exception as exc:
        parser.error(str(exc))
    report = run(
        quick=args.quick, repeats=args.repeats, seed=args.seed,
        workers=args.workers, engines=engine_filter,
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        cells = "  ".join(
            f"{engine}={row[engine]['rounds_per_sec']:>9.1f} r/s"
            for engine in ("indexed", "reference", "vectorized", "sharded")
            if engine in row
        )
        extras = []
        if "speedup" in row:
            extras.append(f"idx/ref={row['speedup']}x")
        if "vectorized_speedup" in row:
            extras.append(f"vec/idx={row['vectorized_speedup']}x")
        if "sharded_speedup" in row:
            extras.append(
                f"shard/idx={row['sharded_speedup']}x@{row['workers']}w"
            )
        elif row["program"] == "flooding-sharded":
            extras.append(f"@{row['workers']}w")
        print(
            f"{row['program']:>10} n={row['n']:<5} d={row['degree']:<3} "
            f"rounds={row['rounds']:<5} {cells}  {' '.join(extras)}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
