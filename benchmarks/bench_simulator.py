"""Round-loop throughput of the simulation engine (rounds/sec).

Measures the indexed engine against the preserved reference loop
(:mod:`repro.simulator.runner_reference`) on two workloads built through
the scenario layer:

* **flooding** — extremum flood on a random 8-regular graph: the
  saturated-broadcast hot path (every node transmits in round 1, traffic
  decays as the extremum spreads);
* **shared-mst** — :func:`simultaneous_msts` over a 2-part Karger edge
  partition: the composite Lemma 5.1 workload (subgraph floods, BFS,
  pipelined upcast) that chains many simulations end to end.

Both run at n ∈ {100, 500, 1000}; the acceptance gate of the engine
refactor is the flooding row at n = 1000: **≥ 2× rounds/sec** over the
reference loop with identical outputs (the engine-equivalence suite pins
bit-identity; this bench pins the speed).

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite simulator
    PYTHONPATH=src python benchmarks/bench_simulator.py            # direct

Results land in ``BENCH_simulator.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ENGINES = ("indexed", "reference")


def _sizes(quick: bool):
    return (24, 60) if quick else (100, 500, 1000)


def _flood_rounds_per_sec(graph, engine: str, repeats: int, seed: int):
    """Total rounds / total wall seconds over ``repeats`` runs (network
    built once; only the round loop is timed)."""
    from repro.simulator.algorithms.flooding import ExtremumFloodProgram
    from repro.simulator.network import Network
    from repro.simulator.runner import SyncRunner

    network = Network(graph, rng=seed)
    factory = lambda v: ExtremumFloodProgram(network.node_id(v))  # noqa: E731
    SyncRunner(network, rng=seed, engine=engine).run(factory)  # warmup
    rounds = 0
    start = time.perf_counter()
    for _ in range(repeats):
        result = SyncRunner(network, rng=seed, engine=engine).run(factory)
        rounds += result.metrics.rounds
    elapsed = time.perf_counter() - start
    return rounds, elapsed, result.outputs


def _shared_mst_rounds_per_sec(graph, engine: str, seed: int):
    from repro.graphs.sampling import karger_edge_partition
    from repro.simulator.algorithms.shared_mst import simultaneous_msts
    from repro.simulator.network import Network
    from repro.simulator.runner import engine_context
    from repro.utils.rng import ensure_rng

    with engine_context(engine):
        network = Network(graph, rng=seed)
        parts = karger_edge_partition(graph, 2, ensure_rng(seed + 1))
        start = time.perf_counter()
        result = simultaneous_msts(network, parts)
        elapsed = time.perf_counter() - start
    rounds = result.fragment_rounds + result.completion_rounds
    return rounds, elapsed, result.forests


def run(quick: bool = False, repeats: int = 10, seed: int = 3) -> Dict:
    from repro.graphs.generators import random_regular_connected

    rows: List[Dict] = []
    for n in _sizes(quick):
        graph = random_regular_connected(8, n, rng=1)
        for program, measure in (
            ("flooding", lambda eng: _flood_rounds_per_sec(graph, eng, repeats, seed)),
            ("shared-mst", lambda eng: _shared_mst_rounds_per_sec(graph, eng, seed)),
        ):
            per_engine = {}
            payloads = {}
            for engine in ENGINES:
                rounds, elapsed, payload = measure(engine)
                per_engine[engine] = {
                    "rounds": rounds,
                    "seconds": round(elapsed, 6),
                    "rounds_per_sec": round(rounds / max(elapsed, 1e-9), 1),
                }
                payloads[engine] = payload
            if payloads["indexed"] != payloads["reference"]:
                raise AssertionError(
                    f"{program} n={n}: engines disagree on outputs"
                )
            assert (
                per_engine["indexed"]["rounds"]
                == per_engine["reference"]["rounds"]
            ), f"{program} n={n}: engines disagree on round counts"
            rows.append(
                {
                    "program": program,
                    "n": n,
                    "m": graph.number_of_edges(),
                    "seed": seed,
                    "rounds": per_engine["indexed"]["rounds"],
                    "indexed": per_engine["indexed"],
                    "reference": per_engine["reference"],
                    "speedup": round(
                        per_engine["indexed"]["rounds_per_sec"]
                        / per_engine["reference"]["rounds_per_sec"],
                        2,
                    ),
                }
            )
    return {
        "benchmark": "simulator_round_loop",
        "unit": "rounds per wall-clock second (outputs asserted identical)",
        "engines": list(ENGINES),
        "flood_repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def smoke() -> None:
    """Tiny end-to-end run for the tier-1 bench_smoke marker."""
    report = run(quick=True, repeats=2)
    assert report["results"], "simulator bench produced no rows"
    for row in report["results"]:
        assert row["rounds"] > 0
        assert row["indexed"]["rounds_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny graphs")
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_simulator.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run(quick=args.quick, repeats=args.repeats, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{program:>10} n={n:<5} rounds={rounds:<5} "
            "indexed={i:>8.1f} r/s  reference={r:>8.1f} r/s  "
            "speedup={speedup}x".format(
                program=row["program"],
                n=row["n"],
                rounds=row["rounds"],
                i=row["indexed"]["rounds_per_sec"],
                r=row["reference"]["rounds_per_sec"],
                speedup=row["speedup"],
            )
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
