"""Round-loop throughput of the simulation engines (rounds/sec).

Measures the registered engines against each other on workloads built
through the scenario layer:

* **flooding** — extremum flood on a random 8-regular graph: the
  saturated-broadcast hot path (every node transmits in round 1, traffic
  decays as the extremum spreads). Runs ``indexed`` vs ``reference``
  vs ``sharded`` (the multiprocess engine, where the platform can fork);
  the reference loop is only timed up to n = 1000 — past that it only
  slows the sweep down without informing it.
* **shared-mst** — :func:`simultaneous_msts` over a 2-part Karger edge
  partition: the composite Lemma 5.1 workload (subgraph floods, BFS,
  pipelined upcast) that chains many simulations end to end
  (``indexed`` vs ``reference``).

Flooding runs at n ∈ {100, 500, 1000, 2000, 5000}; the n = 2000/5000
rows are the scale points of the sharded engine (E26): with ≥ 4 workers
on real cores the acceptance gate is **≥ 1.5× rounds/sec over the
indexed engine at n = 5000**. The ``workers`` field records how many
processes actually ran — on a single-core machine the sharded rows
measure pure barrier overhead (speedup < 1) and say so honestly.

Every row asserts identical outputs and round counts across engines
(the equivalence suites pin full bit-identity; this bench pins speed).

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite simulator
    PYTHONPATH=src python benchmarks/bench_simulator.py            # direct

Results land in ``BENCH_simulator.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The reference loop is a correctness oracle, not a contender; past
#: this n it is dropped from the timing sweep.
REFERENCE_MAX_N = 1000


def _flood_sizes(quick: bool):
    return (24, 60) if quick else (100, 500, 1000, 2000, 5000)


def _mst_sizes(quick: bool):
    return (24, 60) if quick else (100, 500, 1000)


def _default_workers() -> int:
    return max(1, min(os.cpu_count() or 1, 4))


def _flood_engines(workers: int):
    from repro.simulator.runner_sharded import fork_available

    engines = ["indexed", "reference"]
    if fork_available() and workers >= 1:
        engines.append("sharded")
    return engines


def _flood_rounds_per_sec(
    graph, engine: str, repeats: int, seed: int, workers: Optional[int]
):
    """Total rounds / total wall seconds over ``repeats`` runs (network
    built once; only the round loop — including, for the sharded
    engine, its fork/barrier overhead — is timed)."""
    from repro.simulator.algorithms.flooding import ExtremumFloodProgram
    from repro.simulator.network import Network
    from repro.simulator.runner import SyncRunner

    network = Network(graph, rng=seed)
    factory = lambda v: ExtremumFloodProgram(network.node_id(v))  # noqa: E731
    shards = workers if engine == "sharded" else None

    def once():
        return SyncRunner(
            network, rng=seed, engine=engine, shards=shards
        ).run(factory)

    once()  # warmup
    rounds = 0
    start = time.perf_counter()
    for _ in range(repeats):
        result = once()
        rounds += result.metrics.rounds
    elapsed = time.perf_counter() - start
    return rounds, elapsed, result.outputs


def _shared_mst_rounds_per_sec(graph, engine: str, seed: int):
    from repro.graphs.sampling import karger_edge_partition
    from repro.simulator.algorithms.shared_mst import simultaneous_msts
    from repro.simulator.network import Network
    from repro.simulator.runner import engine_context
    from repro.utils.rng import ensure_rng

    with engine_context(engine):
        network = Network(graph, rng=seed)
        parts = karger_edge_partition(graph, 2, ensure_rng(seed + 1))
        start = time.perf_counter()
        result = simultaneous_msts(network, parts)
        elapsed = time.perf_counter() - start
    rounds = result.fragment_rounds + result.completion_rounds
    return rounds, elapsed, result.forests


def _engine_cell(rounds: int, elapsed: float) -> Dict:
    return {
        "rounds": rounds,
        "seconds": round(elapsed, 6),
        "rounds_per_sec": round(rounds / max(elapsed, 1e-9), 1),
    }


def run(
    quick: bool = False,
    repeats: int = 10,
    seed: int = 3,
    workers: Optional[int] = None,
) -> Dict:
    from repro.graphs.generators import random_regular_connected

    if workers is None:
        workers = _default_workers()
    rows: List[Dict] = []

    # -- flooding: the engine shoot-out, up to the E26 scale points ----
    flood_engines = _flood_engines(workers)
    for n in _flood_sizes(quick):
        graph = random_regular_connected(8, n, rng=1)
        # Big graphs amortize fixed costs already; fewer repeats keep
        # the sweep honest without an hour of reference-loop time.
        n_repeats = repeats if n <= 1000 else max(2, repeats // 3)
        engines = [
            engine
            for engine in flood_engines
            if engine != "reference" or n <= REFERENCE_MAX_N
        ]
        per_engine = {}
        payloads = {}
        for engine in engines:
            rounds, elapsed, payload = _flood_rounds_per_sec(
                graph, engine, n_repeats, seed, workers
            )
            per_engine[engine] = _engine_cell(rounds, elapsed)
            payloads[engine] = payload
        for engine in engines[1:]:
            if payloads[engine] != payloads["indexed"]:
                raise AssertionError(
                    f"flooding n={n}: {engine} disagrees with indexed "
                    "on outputs"
                )
            assert (
                per_engine[engine]["rounds"]
                == per_engine["indexed"]["rounds"]
            ), f"flooding n={n}: {engine} disagrees on round counts"
        row = {
            "program": "flooding",
            "n": n,
            "m": graph.number_of_edges(),
            "seed": seed,
            "repeats": n_repeats,
            "rounds": per_engine["indexed"]["rounds"],
            **per_engine,
        }
        if "reference" in per_engine:
            row["speedup"] = round(
                per_engine["indexed"]["rounds_per_sec"]
                / per_engine["reference"]["rounds_per_sec"],
                2,
            )
        if "sharded" in per_engine:
            row["workers"] = workers
            row["sharded_speedup"] = round(
                per_engine["sharded"]["rounds_per_sec"]
                / per_engine["indexed"]["rounds_per_sec"],
                2,
            )
        rows.append(row)

    # -- shared-mst: the composite workload (single-process engines) ---
    for n in _mst_sizes(quick):
        graph = random_regular_connected(8, n, rng=1)
        per_engine = {}
        payloads = {}
        for engine in ("indexed", "reference"):
            rounds, elapsed, payload = _shared_mst_rounds_per_sec(
                graph, engine, seed
            )
            per_engine[engine] = _engine_cell(rounds, elapsed)
            payloads[engine] = payload
        if payloads["indexed"] != payloads["reference"]:
            raise AssertionError(
                f"shared-mst n={n}: engines disagree on outputs"
            )
        assert (
            per_engine["indexed"]["rounds"]
            == per_engine["reference"]["rounds"]
        ), f"shared-mst n={n}: engines disagree on round counts"
        rows.append(
            {
                "program": "shared-mst",
                "n": n,
                "m": graph.number_of_edges(),
                "seed": seed,
                "rounds": per_engine["indexed"]["rounds"],
                **per_engine,
                "speedup": round(
                    per_engine["indexed"]["rounds_per_sec"]
                    / per_engine["reference"]["rounds_per_sec"],
                    2,
                ),
            }
        )
    return {
        "benchmark": "simulator_round_loop",
        "unit": "rounds per wall-clock second (outputs asserted identical)",
        "engines": flood_engines,
        "flood_repeats": repeats,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def smoke() -> None:
    """Tiny end-to-end run for the tier-1 bench_smoke marker."""
    report = run(quick=True, repeats=2, workers=2)
    assert report["results"], "simulator bench produced no rows"
    for row in report["results"]:
        assert row["rounds"] > 0
        assert row["indexed"]["rounds_per_sec"] > 0
        if "sharded" in row:
            assert row["sharded"]["rounds_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny graphs")
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="sharded-engine worker count (default: one per core, max 4)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_simulator.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run(
        quick=args.quick, repeats=args.repeats, seed=args.seed,
        workers=args.workers,
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        cells = "  ".join(
            f"{engine}={row[engine]['rounds_per_sec']:>9.1f} r/s"
            for engine in ("indexed", "reference", "sharded")
            if engine in row
        )
        extras = []
        if "speedup" in row:
            extras.append(f"idx/ref={row['speedup']}x")
        if "sharded_speedup" in row:
            extras.append(
                f"shard/idx={row['sharded_speedup']}x@{row['workers']}w"
            )
        print(
            f"{row['program']:>10} n={row['n']:<5} rounds={row['rounds']:<5} "
            f"{cells}  {' '.join(extras)}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
