"""E12 — Section 5.2 / Karger [31]: random edge partition concentration.

Paper claim: with λ/η ≥ 10 log n / ε², each part's connectivity lands in
[(1−ε)λ/η, (1+ε)λ/η] w.h.p. We sweep η on a high-λ graph and report the
per-part connectivity spread (toy n, so we report the observed band)."""

import statistics

import pytest

from benchmarks.conftest import print_table
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import harary_graph
from repro.graphs.sampling import choose_karger_parts, karger_edge_partition


@pytest.mark.benchmark(group="E12-sampling")
def test_e12_partition_concentration(benchmark):
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(20, 42)
        lam = edge_connectivity(g)
        for eta in (2, 3, 4):
            spreads = []
            for seed in range(5):
                parts = karger_edge_partition(g, eta, rng=seed)
                lams = [edge_connectivity(p) for p in parts]
                spreads.extend(lams)
            ideal = lam / eta
            rows.append(
                (
                    eta,
                    ideal,
                    min(spreads),
                    statistics.mean(spreads),
                    max(spreads),
                    min(spreads) / ideal,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E12: Karger partition — per-part connectivity vs lambda/eta",
        ["eta", "lambda/eta", "min", "mean", "max", "min/(l/eta)"],
        rows,
    )
    # Exact concentration needs λ/η ≥ 10 ln n / ε² (≈ 37 here), which only
    # η=2 approaches at this toy scale — assert survival there and report
    # the degradation for larger η (the paper's constants are the point).
    eta2 = rows[0]
    assert eta2[2] >= 1, "an η=2 part lost connectivity entirely"
    assert 0.3 <= eta2[3] / eta2[1] <= 1.5


@pytest.mark.benchmark(group="E12-sampling")
def test_e12_eta_selection_rule(benchmark):
    """The η chosen by the Section 5.2 rule keeps λ/η in its window."""
    import math

    rows = []

    def run_all():
        rows.clear()
        for lam, n, eps in ((1000, 100, 0.25), (5000, 200, 0.25), (50, 100, 0.25)):
            eta = choose_karger_parts(lam, n, eps)
            floor = 10 * math.log(n) / eps**2
            # The window constraint only binds when a split happens; η=1
            # means λ was already small enough to pack directly.
            ok = eta == 1 or lam / eta >= floor
            rows.append((lam, n, eta, lam / eta, floor, ok))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E12b: eta selection (window: lambda/eta >= 10 ln n / eps^2)",
        ["lambda", "n", "eta", "lambda/eta", "floor", "ok"],
        rows,
    )
    assert all(r[5] for r in rows)

def smoke():
    """Tiny E12-style run for the bench-smoke tier."""
    g = harary_graph(6, 16)
    parts = karger_edge_partition(g, 2, rng=0)
    assert sum(p.number_of_edges() for p in parts) == g.number_of_edges()
    assert choose_karger_parts(2000, 16) >= 1
