"""E22 — the Θ(√n) point-to-point barrier vs Corollary 1.6 (§1.3.1).

Paper claim: "no point-to-point oblivious routing can have o(√n)
vertex-congestion competitiveness" [24] — which is why Corollary 1.6's
O(log n)-competitive *broadcast* oblivious routing is interesting. We
measure the canonical grid witness (row-column routing vs the staircase
offline optimum) across grid sizes, next to the broadcast scheme's
competitiveness on the same grids.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

from benchmarks.conftest import print_table
from repro.apps.oblivious_routing import vertex_congestion_report
from repro.apps.point_to_point import grid_competitiveness, grid_graph
from repro.core.cds_packing import fractional_cds_packing
from repro.graphs.connectivity import vertex_connectivity


@pytest.mark.benchmark(group="E22-point-to-point")
def test_e22_sqrt_n_barrier(benchmark):
    sides = [4, 8, 12, 16, 20]
    rows = []

    def run_all():
        rows.clear()
        for side in sides:
            report = grid_competitiveness(side)
            rows.append(
                (
                    f"{side}x{side}",
                    side * side,
                    report.oblivious_congestion,
                    report.offline_congestion,
                    report.competitiveness,
                    report.competitiveness / side,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E22a point-to-point oblivious routing on the grid (reversal demands)",
        ["grid", "n", "oblivious", "offline", "ratio", "ratio/√n"],
        rows,
    )
    ratios = [row[4] for row in rows]
    assert ratios == sorted(ratios)  # grows with √n
    normalized = [row[5] for row in rows]
    assert max(normalized) / min(normalized) < 1.5  # linear in side


@pytest.mark.benchmark(group="E22-point-to-point")
def test_e22_broadcast_contrast(benchmark):
    sides = [4, 5, 6]
    rows = []

    def run_all():
        rows.clear()
        for side in sides:
            graph = nx.convert_node_labels_to_integers(grid_graph(side))
            n = graph.number_of_nodes()
            k = vertex_connectivity(graph)
            result = fractional_cds_packing(graph, rng=3)
            sources = {i: i % n for i in range(n)}
            report = vertex_congestion_report(
                result.packing, sources, k, rng=5
            )
            rows.append(
                (
                    f"{side}x{side}",
                    n,
                    report.measured,
                    f"{report.lower_bound:.1f}",
                    report.competitiveness,
                    report.competitiveness / math.log(n),
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E22b broadcast oblivious routing (Cor 1.6) on the same grids",
        ["grid", "n", "congestion", "lower bnd", "ratio", "ratio/ln n"],
        rows,
    )
    # The broadcast scheme's normalized ratio must stay bounded while
    # E22a's point-to-point ratio grows with √n.
    normalized = [row[5] for row in rows]
    assert max(normalized) < 25

def smoke():
    """Tiny E22-style run for the bench-smoke tier."""
    report = grid_competitiveness(4)
    assert report.competitiveness > 0
