"""E18 — exact baselines vs. the paper's decompositions.

Two comparisons the paper itself makes in prose:

* Spanning side: the Roskind–Tarjan exact packing realizes the
  Tutte/Nash-Williams number; our MWU fractional packing (Theorem 1.3)
  must land within (1 − ε) of ⌈(λ−1)/2⌉, and never above the exact
  integral number + 1 (fractional relaxation slack).
* Vertex side: the Even–Tarjan exact connectivity is the ground truth
  the Corollary 1.7 approximation is measured against; the greedy CDS
  baseline calibrates per-class sizes (Lemma 4.6's O(n log n / k)).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import print_table
from repro.baselines.greedy_cds import greedy_connected_dominating_set
from repro.baselines.mincut import edge_connectivity_exact
from repro.baselines.tree_packing_exact import spanning_tree_packing_number
from repro.baselines.vertex_connectivity_exact import (
    even_tarjan_vertex_connectivity,
)
from repro.core.cds_packing import fractional_cds_packing
from repro.core.spanning_packing import fractional_spanning_tree_packing
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    torus_grid,
)

FAMILIES = [
    ("harary(4,20)", lambda: harary_graph(4, 20)),
    ("harary(6,24)", lambda: harary_graph(6, 24)),
    ("clique_chain(4,5)", lambda: clique_chain(4, 5)),
    ("fat_cycle(3,6)", lambda: fat_cycle(3, 6)),
    ("hypercube(4)", lambda: hypercube(4)),
    ("torus(5,5)", lambda: torus_grid(5, 5)),
]


@pytest.mark.benchmark(group="E18-baselines")
def test_e18_spanning_packing_vs_exact(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES:
            graph = builder()
            lam = edge_connectivity_exact(graph)
            exact = spanning_tree_packing_number(graph)
            tutte = math.ceil((lam - 1) / 2)
            packing = fractional_spanning_tree_packing(graph, rng=5).packing
            rows.append(
                (name, lam, tutte, exact, packing.size, packing.size / max(tutte, 1))
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E18a MWU fractional packing vs Roskind–Tarjan exact",
        ["family", "λ", "⌈(λ-1)/2⌉", "RT exact", "MWU size", "MWU/Tutte"],
        rows,
    )
    for row in rows:
        _, lam, tutte, exact, size, _ = row
        assert exact >= tutte  # Tutte/Nash-Williams existence
        assert size <= lam + 1e-6  # no packing can beat λ


@pytest.mark.benchmark(group="E18-baselines")
def test_e18_vertex_connectivity_oracles_agree(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES:
            graph = builder()
            ours, _ = even_tarjan_vertex_connectivity(graph)
            import networkx as nx

            reference = nx.node_connectivity(graph)
            rows.append((name, ours, reference, ours == reference))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E18b Even–Tarjan vs networkx exact vertex connectivity",
        ["family", "even-tarjan", "networkx", "agree"],
        rows,
    )
    assert all(row[3] for row in rows)


@pytest.mark.benchmark(group="E18-baselines")
def test_e18_sparsified_mincut_tradeoff(benchmark):
    """Karger [32]: skeleton size vs estimate accuracy on dense inputs."""
    import networkx as nx

    from repro.baselines.approx_mincut import sparsified_min_cut

    sizes = [30, 45, 60]
    rows = []

    def run_all():
        rows.clear()
        for n in sizes:
            graph = nx.complete_graph(n)
            lam = n - 1
            result = sparsified_min_cut(graph, epsilon=0.5, rng=7)
            rows.append(
                (
                    f"K_{n}",
                    lam,
                    f"{result.sample_probability:.2f}",
                    f"{result.compression:.2f}",
                    f"{result.estimate:.1f}",
                    f"{abs(result.estimate - lam) / lam:.3f}",
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E18d sparsified min cut (Karger [32], ε=0.5)",
        ["graph", "λ", "p", "m'/m", "estimate", "rel err"],
        rows,
    )
    for row in rows:
        assert float(row[5]) <= 0.5  # within ε


@pytest.mark.benchmark(group="E18-baselines")
def test_e18_class_sizes_vs_greedy_cds(benchmark):
    """Lemma 4.6 calibration: our packing's average class size should be
    within an O(log n) factor of the greedy CDS baseline size."""
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES:
            graph = builder()
            n = graph.number_of_nodes()
            greedy = len(greedy_connected_dominating_set(graph))
            result = fractional_cds_packing(graph, rng=7)
            sizes = [
                wt.tree.number_of_nodes() for wt in result.packing.trees
            ]
            mean_size = sum(sizes) / max(1, len(sizes))
            rows.append(
                (
                    name,
                    greedy,
                    f"{mean_size:.1f}",
                    max(sizes, default=0),
                    f"{mean_size / max(greedy, 1):.2f}",
                    f"{math.log(n):.2f}",
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E18c packing class sizes vs greedy CDS (Lemma 4.6 calibration)",
        ["family", "greedy CDS", "mean class", "max class", "ratio", "ln n"],
        rows,
    )

def smoke():
    """Tiny E18-style run for the bench-smoke tier."""
    graph = harary_graph(4, 10)
    assert spanning_tree_packing_number(graph) >= 1
    kappa, _ = even_tarjan_vertex_connectivity(graph)
    assert kappa == 4
    assert fractional_spanning_tree_packing(graph, rng=5).size > 0
