"""E6 — Corollary 1.6: oblivious routing congestion competitiveness.

Paper claims: routing each message along a random tree gives an oblivious
broadcast routing with O(log n)-competitive vertex congestion and
O(1)-competitive edge congestion. (No point-to-point oblivious routing
can beat Θ(√n) vertex-congestion competitiveness [24] — broadcast is the
regime where this works.)"""

import math

import pytest

from benchmarks.conftest import print_table
from repro.apps.oblivious_routing import (
    edge_congestion_report,
    vertex_congestion_report,
)
from repro.core.cds_packing import PackingParameters, construct_cds_packing
from repro.core.spanning_packing import (
    MwuParameters,
    fractional_spanning_tree_packing,
)
from repro.graphs.generators import harary_graph

FAST = MwuParameters(epsilon=0.2, beta_factor=2.0)


@pytest.mark.benchmark(group="E6-oblivious")
def test_e6_vertex_congestion_competitiveness(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for k, n in ((6, 24), (8, 32), (12, 36)):
            g = harary_graph(k, n)
            packing = construct_cds_packing(
                g, k,
                params=PackingParameters(class_factor=1.0, layer_factor=1),
                rng=11,
            ).packing
            sources = {i: i % n for i in range(2 * n)}
            rep = vertex_congestion_report(packing, sources, k=k, rng=12)
            rows.append(
                (
                    f"H({k},{n})",
                    rep.measured,
                    rep.lower_bound,
                    rep.competitiveness,
                    rep.normalized_by_log,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E6: Corollary 1.6a — vertex congestion (claim: O(log n)-competitive)",
        ["graph", "measured", "lower bound", "competitiveness", "comp/ln n"],
        rows,
    )
    assert all(r[4] <= 12 for r in rows), "vertex competitiveness not O(log n)"


@pytest.mark.benchmark(group="E6-oblivious")
def test_e6_edge_congestion_competitiveness(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for lam, n in ((5, 20), (8, 24)):
            g = harary_graph(lam, n)
            packing = fractional_spanning_tree_packing(
                g, params=FAST, rng=13
            ).packing
            sources = {i: i % n for i in range(2 * n)}
            rep = edge_congestion_report(packing, sources, lam=lam, rng=14)
            rows.append(
                (f"H({lam},{n})", rep.measured, rep.lower_bound, rep.competitiveness)
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E6b: Corollary 1.6b — edge congestion (claim: O(1)-competitive)",
        ["graph", "measured", "lower bound", "competitiveness"],
        rows,
    )
    assert all(r[3] <= 40 for r in rows), "edge competitiveness exploded"

def smoke():
    """Tiny E6-style run for the bench-smoke tier."""
    g = harary_graph(4, 12)
    packing = construct_cds_packing(
        g, 4, params=PackingParameters(class_factor=1.0, layer_factor=1), rng=11
    ).packing
    report = vertex_congestion_report(
        packing, {i: i % 12 for i in range(8)}, k=4, rng=12
    )
    assert report is not None
