"""E2 — Theorem 1.2: centralized runtime near-linear in m.

The paper claims Õ(m); we fit the empirical scaling exponent of wall-clock
time vs edge count on a growing Harary family (log-log slope ≈ 1 up to
log factors; the previous algorithms of [12]/[15] were Ω(n³))."""

import math
import time

import pytest

from benchmarks.conftest import print_table
from repro.core.cds_packing import PackingParameters, construct_cds_packing
from repro.graphs.generators import harary_graph

SIZES = [24, 48, 96, 192]


@pytest.mark.benchmark(group="E2-runtime")
def test_e2_centralized_runtime_scaling(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in SIZES:
            g = harary_graph(6, n)
            m = g.number_of_edges()
            start = time.perf_counter()
            result = construct_cds_packing(
                g, 6, params=PackingParameters(), rng=3
            )
            elapsed = time.perf_counter() - start
            rows.append((n, m, elapsed, result.size))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E2: Theorem 1.2 — centralized Õ(m) runtime scaling",
        ["n", "m", "seconds", "packing size"],
        rows,
    )
    # Log-log slope between the smallest and largest instance: near-linear
    # (the n^3 algorithms of [12]/[15] would show slope >= 3).
    t0, t1 = rows[0][2], rows[-1][2]
    m0, m1 = rows[0][1], rows[-1][1]
    slope = math.log(max(t1, 1e-6) / max(t0, 1e-6)) / math.log(m1 / m0)
    print(f"empirical log-log slope (time vs m): {slope:.2f}")
    assert slope < 2.5, f"runtime scaling {slope:.2f} is far from near-linear"


@pytest.mark.benchmark(group="E2-runtime")
def test_e2_single_construction_timing(benchmark):
    """Plain pytest-benchmark timing of one construction (n=96)."""
    g = harary_graph(6, 96)

    def build():
        return construct_cds_packing(g, 6, rng=4)

    result = benchmark(build)
    assert result.size > 0

def smoke():
    """Tiny E2-style run for the bench-smoke tier."""
    result = construct_cds_packing(
        harary_graph(4, 16), 4, params=PackingParameters(), rng=3
    )
    assert result.size > 0
