"""E21 — Lemma 5.1 end to end: η simultaneous MSTs, one shared BFS tree.

Paper claim: solving the Θ(log³ n) MST instances of all η Karger parts
with one shared, pipelined upcast costs O(D + η·n/d) per iteration
instead of η separate O(D + n/d) upcasts — the composition that gives
Theorem 1.3 its Õ(D + √(nλ)) round complexity. We sweep η and report
the measured sharing speedup.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.graphs.generators import harary_graph
from repro.graphs.sampling import karger_edge_partition
from repro.simulator.algorithms.shared_mst import simultaneous_msts
from repro.simulator.network import Network

import networkx as nx


@pytest.mark.benchmark(group="E21-shared-mst")
def test_e21_sharing_speedup_vs_eta(benchmark):
    graph = harary_graph(12, 36)
    network = Network(graph, rng=1)
    etas = [1, 2, 3, 4]
    rows = []

    def run_all():
        rows.clear()
        for eta in etas:
            parts = (
                [graph]
                if eta == 1
                else karger_edge_partition(graph, eta, rng=9)
            )
            result = simultaneous_msts(network, parts)
            spanning = sum(
                1
                for part, edges in zip(parts, result.forests)
                if nx.is_connected(part)
                and len(edges) == graph.number_of_nodes() - 1
            )
            rows.append(
                (
                    eta,
                    spanning,
                    result.upcast_items,
                    result.fragment_rounds,
                    result.completion_rounds,
                    result.naive_completion_rounds,
                    result.sharing_speedup,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E21 simultaneous MSTs on harary(12,36): shared vs naive completion",
        [
            "η",
            "spanning",
            "upcast items",
            "frag rounds",
            "shared compl",
            "naive compl",
            "speedup",
        ],
        rows,
    )
    speedups = [row[6] for row in rows]
    # Sharing must pay off increasingly with η (Lemma 5.1's point).
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5

def smoke():
    """Tiny E21-style run for the bench-smoke tier."""
    graph = harary_graph(4, 12)
    result = simultaneous_msts(Network(graph, rng=1), [graph])
    assert result.forests
