"""F1–F3 — regenerate the content of the paper's three figures.

The figures are explanatory diagrams; the reproduction asserts the
structural facts their captions state and prints live renderings built
from actual algorithm state."""

import pytest

from repro.analysis.figures import (
    figure1_bridging_graph,
    figure2_connector_paths,
    figure3_construction,
)
from repro.graphs.connectivity import is_dominating_set
from repro.graphs.generators import harary_graph
from repro.lowerbounds.construction import build_g_xy, build_h_xy


@pytest.mark.benchmark(group="F-figures")
def test_f1_bridging_graph_figure(benchmark):
    fig = benchmark.pedantic(
        lambda: figure1_bridging_graph(
            harary_graph(10, 60), n_classes=24, layers=8, rng=3
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + fig.render())
    # Caption facts: matching merges components, so excess decreases,
    # and matched + random = n.
    assert fig.excess_after <= fig.excess_before
    assert fig.matched + fig.random_type2 == 60
    assert fig.matched > 0, "figure should exhibit a non-trivial matching"


@pytest.mark.benchmark(group="F-figures")
def test_f2_connector_paths_figure(benchmark):
    g = harary_graph(6, 30)
    nodes = sorted(g.nodes())
    comp_a = set(nodes[0 : 15 - 3])
    comp_b = set(nodes[15 : 30 - 3])
    members = comp_a | comp_b

    fig = benchmark.pedantic(
        lambda: figure2_connector_paths(g, comp_a, members),
        rounds=1,
        iterations=1,
    )
    print("\n" + fig.render())
    assert is_dominating_set(g, members)
    # Caption facts: internal vertices lie outside the class; short and
    # long internals are disjoint by minimality (condition C).
    shorts = set(fig.short_internals)
    for u, w in fig.long_pairs:
        assert u not in members and w not in members
        assert u not in shorts and w not in shorts
    assert len(shorts) + len(fig.long_pairs) >= 6  # Lemma 4.3: >= k


@pytest.mark.benchmark(group="F-figures")
def test_f3_construction_figure(benchmark):
    inst = build_g_xy(h=6, ell=6, w=3, x_set={2, 3, 5, 6}, y_set={1, 4, 5})

    fig = benchmark.pedantic(
        lambda: figure3_construction(inst), rounds=1, iterations=1
    )
    print("\n" + fig.render())
    # Caption facts (Figure 3 uses h = l = 6, X={2,3,5,6}, Y={1,4,5}).
    assert fig.n_heavy == (6 + 1) * 12 * 3  # blow-up: w copies each
    assert fig.n_encoding == 4 + 3
    assert fig.diameter <= 3

def smoke():
    """Tiny F1/F3-style run for the bench-smoke tier."""
    fig = figure1_bridging_graph(harary_graph(6, 18), n_classes=6, layers=4, rng=3)
    assert fig.render()
    inst = build_g_xy(h=3, ell=1, w=6, x_set=frozenset({1}), y_set=frozenset({1}))
    assert figure3_construction(inst).render()
