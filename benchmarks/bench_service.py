"""E30: warm service vs cold sessions; incremental re-canonicalization.

The service layer (``repro serve`` / :class:`repro.service.ServiceCore`)
exists for two workloads, and this benchmark times both →
``BENCH_service.json`` (via ``run_benchmarks.py --suite service``):

* **warm vs cold queries** — the same ``estimate`` request stream
  answered by one long-lived :class:`ServiceCore` (sessions stay in the
  fingerprint LRU, results in the per-session cache) versus a cold
  :class:`~repro.api.GraphSession` per call — the "CLI in a loop"
  shape. Gate: warm queries/sec must beat cold on every row.
* **incremental vs from-scratch re-canonicalization** — an alternating
  ``edge_new``/``edge_rmv`` edit stream against one warm session
  (splice + lazy invalidation, fingerprint included) versus rebuilding
  an :class:`~repro.fastgraph.IndexedGraph` + fingerprint from the
  edited graph each time. Both sides end bit-identical (asserted);
  the per-edit latencies are recorded.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

EDIT_STREAM = 40  # edits per case in the re-canonicalization measurement


def _cases(quick: bool):
    if quick:
        return [("harary:6,48", 24), ("hypercube:5", 16)]
    return [
        ("harary:6,120", 60),
        ("regular:8,250,3", 120),
        ("harary:8,400", 200),
    ]


def _warm_vs_cold(spec: str, queries: int, seed: int) -> Dict:
    from repro.api import GraphSession
    from repro.service import ServiceCore

    core = ServiceCore()
    request = {"op": "estimate", "graph": spec, "seed": seed}
    core.handle(request)  # build the session outside the timed region

    start = time.perf_counter()
    for _ in range(queries):
        response = core.handle(request)
        assert response["task"] == "connectivity"
    warm_s = time.perf_counter() - start

    cold_queries = max(2, queries // 10)  # cold calls are slow; sample
    start = time.perf_counter()
    for _ in range(cold_queries):
        GraphSession(spec).connectivity(seed=seed)
    cold_s = time.perf_counter() - start

    warm_qps = queries / warm_s
    cold_qps = cold_queries / cold_s
    return {
        "queries": queries,
        "warm_s": round(warm_s, 6),
        "cold_queries": cold_queries,
        "cold_s": round(cold_s, 6),
        "warm_qps": round(warm_qps, 1),
        "cold_qps": round(cold_qps, 1),
        "speedup": round(warm_qps / cold_qps, 2),
    }


def _edit_schedule(graph, edits: int):
    """Alternating remove/re-add over distinct edges (state-restoring)."""
    pairs = sorted(graph.edges(), key=str)[: max(1, edits // 2)]
    schedule = []
    for a, b in pairs:
        schedule.append(("remove", a, b))
        schedule.append(("add", a, b))
    return schedule[:edits]


def _incremental_vs_scratch(spec: str, edits: int) -> Dict:
    from repro.api import GraphSession
    from repro.fastgraph import IndexedGraph
    from repro.api.specs import parse_graph_spec

    session = GraphSession(spec)
    session.fingerprint  # warm: index + fingerprint built
    schedule = _edit_schedule(session.graph, edits)

    incremental: List[float] = []
    for op, a, b in schedule:
        start = time.perf_counter()
        if op == "add":
            session.add_edge(a, b)
        else:
            session.remove_edge(a, b)
        fingerprint = session.fingerprint  # includes lazy invalidation
        incremental.append(time.perf_counter() - start)

    shadow = parse_graph_spec(spec)
    scratch: List[float] = []
    for op, a, b in schedule:
        start = time.perf_counter()
        if op == "add":
            shadow.add_edge(a, b)
        else:
            shadow.remove_edge(a, b)
        rebuilt = GraphSession(shadow, label=spec)
        scratch_fp = rebuilt.fingerprint  # full re-canonicalization
        scratch.append(time.perf_counter() - start)

    assert fingerprint == scratch_fp, f"{spec}: edit streams diverged"
    incremental_s = sum(incremental) / len(incremental)
    scratch_s = sum(scratch) / len(scratch)
    return {
        "edits": len(schedule),
        "incremental_per_edit_s": round(incremental_s, 8),
        "scratch_per_edit_s": round(scratch_s, 8),
        "speedup": round(scratch_s / incremental_s, 2),
    }


def run(quick: bool = False, repeats: int = 1, seed: int = 9) -> Dict:
    """Measure both service claims; assert equality gates per row."""
    del repeats  # query streams are already averaged internally
    rows: List[Dict] = []
    for spec, queries in _cases(quick):
        from repro.api import GraphSession

        probe = GraphSession(spec)
        query_row = _warm_vs_cold(spec, queries, seed)
        edit_row = _incremental_vs_scratch(
            spec, EDIT_STREAM if not quick else 10
        )
        if not quick and query_row["speedup"] <= 1.0:
            # The acceptance gate: a warm service must answer measurably
            # faster than cold per-call sessions. (--quick rows are too
            # small to time-gate without flaking.)
            raise AssertionError(
                f"{spec}: warm service ({query_row['warm_qps']} q/s) did "
                f"not beat cold sessions ({query_row['cold_qps']} q/s)"
            )
        rows.append(
            {
                "graph": spec,
                "n": probe.n,
                "m": probe.m,
                "seed": seed,
                "queries": query_row,
                "recanonicalization": edit_row,
            }
        )
    return {
        "benchmark": "service",
        "unit": "seconds (wall clock); qps = queries per second",
        "gate": (
            "warm service beats cold per-call sessions on every row; "
            "incremental and from-scratch re-canonicalization agree"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def smoke():
    """Tiny run + equality gates for the bench-smoke tier."""
    report = run(quick=True)
    assert report["results"], "service bench produced no rows"
    for row in report["results"]:
        assert row["queries"]["warm_qps"] > 0
        assert row["recanonicalization"]["incremental_per_edit_s"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny graphs")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick, repeats=args.repeats, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{graph:>16}  n={n:<4} warm={warm:>8} q/s cold={cold:>7} q/s "
            "({qx}x)   edit: inc={inc:.6f}s scratch={scr:.6f}s ({ex}x)".format(
                graph=row["graph"], n=row["n"],
                warm=row["queries"]["warm_qps"],
                cold=row["queries"]["cold_qps"],
                qx=row["queries"]["speedup"],
                inc=row["recanonicalization"]["incremental_per_edit_s"],
                scr=row["recanonicalization"]["scratch_per_edit_s"],
                ex=row["recanonicalization"]["speedup"],
            )
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
