"""E19 — Lemma 5.1: η pipelined upcasts share one BFS tree.

Paper claim: upcasting the inter-fragment edges of η simultaneous MST
computations over a shared BFS tree takes O(D + η·n/d) rounds — the
pipelining that turns a naive O(η·(D + n/d)) into Theorem 1.3's
Õ(D + √(nλ)). We measure rounds against both the pipeline bound
(depth + total items) and the naive sequential cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.graphs.generators import clique_chain, harary_graph
from repro.simulator.algorithms.pipelined_upcast import pipelined_upcast
from repro.simulator.network import Network

import networkx as nx


@pytest.mark.benchmark(group="E19-pipelined-upcast")
def test_e19_stream_scaling(benchmark):
    """Rounds grow additively in the stream count, not multiplicatively."""
    graph = nx.path_graph(24)  # D = 23: the diameter-dominated regime
    network = Network(graph, rng=1)
    stream_counts = [1, 2, 4, 8]
    rows = []

    def run_all():
        rows.clear()
        for streams in stream_counts:
            items = {
                v: [(s, (s, v)) for s in range(streams)]
                for v in network.nodes
            }
            result = pipelined_upcast(network, items)
            naive = streams * (result.tree_depth + network.n)
            rows.append(
                (
                    streams,
                    result.total_items,
                    result.rounds,
                    result.pipeline_bound,
                    naive,
                    naive / max(1, result.rounds),
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E19 pipelined upcast on path(24): rounds vs streams η",
        ["η", "items", "rounds", "D+items bound", "naive η·(D+n)", "speedup"],
        rows,
    )
    for row in rows:
        assert row[2] <= row[3] + 2  # within the pipeline bound
    # Pipelining must win by a growing factor as η grows.
    assert rows[-1][5] > rows[0][5]


@pytest.mark.benchmark(group="E19-pipelined-upcast")
def test_e19_topology_shapes(benchmark):
    """The D term versus the item term across topologies."""
    topologies = [
        ("path(30)", nx.path_graph(30)),
        ("harary(4,30)", harary_graph(4, 30)),
        ("clique_chain(4,6)", clique_chain(4, 6)),
        ("star(29)", nx.star_graph(29)),
    ]
    rows = []

    def run_all():
        rows.clear()
        for name, graph in topologies:
            network = Network(graph, rng=2)
            items = {v: [(0, v)] for v in network.nodes}
            result = pipelined_upcast(network, items)
            rows.append(
                (
                    name,
                    result.tree_depth,
                    result.total_items,
                    result.rounds,
                    result.pipeline_bound,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E19 upcast rounds by topology (one item per node)",
        ["topology", "depth", "items", "rounds", "bound"],
        rows,
    )
    for row in rows:
        assert row[3] <= row[4] + 2

def smoke():
    """Tiny E19-style run for the bench-smoke tier."""
    network = Network(nx.path_graph(8), rng=1)
    result = pipelined_upcast(network, {v: [(0, (0, v))] for v in network.nodes})
    assert result.rounds > 0
