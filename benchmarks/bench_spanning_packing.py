"""E3 — Theorem 1.3 / Lemmas F.1-F.2: spanning packing quality.

Paper claims: total weight ⌈(λ−1)/2⌉(1−ε) with per-edge load ≤ 1, each
edge in O(log³ n) trees, after O(log³ n) MWU iterations."""

import math

import pytest

from benchmarks.conftest import print_table
from repro.core.spanning_packing import (
    MwuParameters,
    fractional_spanning_tree_packing,
)
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import (
    fat_cycle,
    harary_graph,
    hypercube,
    random_regular_connected,
)

FAMILIES = [
    ("harary(5,24)", lambda: harary_graph(5, 24)),
    ("harary(8,24)", lambda: harary_graph(8, 24)),
    ("harary(11,30)", lambda: harary_graph(11, 30)),
    ("hypercube(4)", lambda: hypercube(4)),
    ("fat_cycle(3,6)", lambda: fat_cycle(3, 6)),
    ("regular(8,24)", lambda: random_regular_connected(8, 24, rng=2)),
]

# beta_factor=1 (the paper's Θ(1/(α log n))): larger β overshoots and
# cycles between MSTs without driving the max load below (1+ε)/target —
# the ablation benchmark bench_ablation.py quantifies this.
PARAMS = MwuParameters(epsilon=0.15, beta_factor=1.0)


@pytest.mark.benchmark(group="E3-spanning")
def test_e3_spanning_packing_vs_tutte_bound(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES:
            g = builder()
            lam = edge_connectivity(g)
            result = fractional_spanning_tree_packing(g, params=PARAMS, rng=9)
            result.packing.verify()
            per_edge = result.packing.trees_per_edge()
            iters = max(t.iterations for t in result.traces)
            rows.append(
                (
                    name,
                    lam,
                    result.target,
                    result.size,
                    result.efficiency,
                    result.packing.max_edge_load(),
                    max(per_edge.values()),
                    iters,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E3: Theorem 1.3 — fractional spanning tree packing",
        [
            "family", "lam", "ceil((l-1)/2)", "size", "size/target",
            "max edge load", "trees/edge", "MWU iters",
        ],
        rows,
    )
    for row in rows:
        assert row[4] >= 0.6, f"{row[0]}: efficiency {row[4]} too low"
        assert row[5] <= 1.0 + 1e-9
        n = 30
        assert row[6] <= 60 * math.log(n) ** 3


@pytest.mark.benchmark(group="E3-spanning")
def test_e3_mwu_iteration_count_polylog(benchmark):
    """Lemma F.2: convergence within Θ(log³ n) iterations."""
    rows = []

    def run_all():
        rows.clear()
        for n in (16, 24, 32):
            g = harary_graph(6, n)
            result = fractional_spanning_tree_packing(g, params=PARAMS, rng=10)
            iters = max(t.iterations for t in result.traces)
            cap = PARAMS.iteration_cap(n)
            rows.append((n, iters, cap, iters / max(1, math.log(n) ** 3)))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E3b: MWU iterations vs Θ(log³ n) schedule",
        ["n", "iterations", "cap", "iters/ln³n"],
        rows,
    )
    for _, iters, cap, _ in rows:
        assert iters <= cap

def smoke():
    """Tiny E3-style run for the bench-smoke tier."""
    result = fractional_spanning_tree_packing(harary_graph(4, 12), params=PARAMS, rng=9)
    result.packing.verify()
    assert result.size > 0
