"""E16 — Section 1.4.1: the algorithmic Zehavi–Itai approximation.

Paper claim: vertex-disjoint dominating trees yield vertex independent
spanning trees for *any* root. We build integral packings, convert, and
verify independence exactly across multiple roots."""

import pytest

from benchmarks.conftest import print_table
from repro.core.independent_trees import (
    independent_trees_from_packing,
    verify_vertex_independent,
)
from repro.core.integral_packing import integral_cds_packing
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import fat_cycle


@pytest.mark.benchmark(group="E16-independent-trees")
def test_e16_independent_trees_any_root(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for width, length in ((6, 4), (8, 4)):
            g = fat_cycle(width, length)
            k = vertex_connectivity(g)
            result = integral_cds_packing(g, class_factor=3.0, rng=17)
            roots = list(g.nodes())[:4]
            all_ok = True
            for root in roots:
                trees = independent_trees_from_packing(result.packing, root)
                all_ok = all_ok and verify_vertex_independent(g, trees, root)
            rows.append(
                (
                    f"fat_cycle({width},{length})",
                    k,
                    result.size,
                    len(roots),
                    all_ok,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E16: vertex independent trees from disjoint dominating trees",
        ["graph", "k", "independent trees", "roots checked", "independence"],
        rows,
    )
    assert all(r[4] for r in rows)
    assert any(r[2] >= 2 for r in rows), "need >= 2 trees for a real check"

def smoke():
    """Tiny E16-style run for the bench-smoke tier."""
    g = fat_cycle(6, 4)
    result = integral_cds_packing(g, class_factor=3.0, rng=17)
    root = next(iter(g.nodes()))
    trees = independent_trees_from_packing(result.packing, root)
    assert verify_vertex_independent(g, trees, root)
