"""E17 — network coding vs. tree-packing broadcast (Section 1 motivation).

Paper claim: with O(log n)-bit messages, RLNC's coefficient vectors cap
the coded flow at O(log n) messages per round, while the dominating tree
packing sustains Ω(k / log n) — so for message batches much larger than
the budget, routing over packed trees overtakes coding. We sweep the
batch size N and report both throughputs and the tree/coding advantage,
locating the crossover.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.apps.network_coding import (
    coded_packet_bits,
    compare_with_tree_broadcast,
    rlnc_gossip,
)
from repro.core.cds_packing import fractional_cds_packing
from repro.graphs.generators import harary_graph

BUDGET = 24  # bits per message: the concrete O(log n)
GRAPH_K = 6
GRAPH_N = 24


@pytest.mark.benchmark(group="E17-network-coding")
def test_e17_throughput_crossover(benchmark):
    graph = harary_graph(GRAPH_K, GRAPH_N)
    packing = fractional_cds_packing(graph, rng=3).packing
    batch_sizes = [12, 24, 72, 240, 480]
    rows = []

    def run_all():
        rows.clear()
        for batch in batch_sizes:
            sources = {i: i % GRAPH_N for i in range(batch)}
            comparison = compare_with_tree_broadcast(
                graph, packing, sources, budget_bits=BUDGET, rng=11
            )
            rows.append(
                (
                    batch,
                    comparison.coded.rounds_per_packet,
                    comparison.coded_throughput,
                    comparison.tree_throughput,
                    comparison.tree_advantage,
                    "trees" if comparison.tree_advantage > 1 else "coding",
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E17 coded vs tree broadcast "
        f"(Harary k={GRAPH_K}, n={GRAPH_N}, budget={BUDGET}b)",
        [
            "N msgs",
            "rounds/pkt",
            "coded thr",
            "tree thr",
            "tree/coded",
            "winner",
        ],
        rows,
    )
    # The paper's qualitative claim: trees win once N >> budget.
    assert rows[-1][4] > 1.0


@pytest.mark.benchmark(group="E17-network-coding")
def test_e17_coefficient_overhead_growth(benchmark):
    """The per-packet round cost must grow linearly in N (coefficient
    vector length) while the routed header grows only logarithmically."""
    graph = harary_graph(4, 16)
    batches = [8, 32, 128, 512]
    rows = []

    def run_all():
        rows.clear()
        for batch in batches:
            packet = coded_packet_bits(batch, BUDGET)
            out = rlnc_gossip(
                graph,
                {i: i % 16 for i in range(min(batch, 64))},
                payload_bits=BUDGET,
                budget_bits=BUDGET,
                rng=2,
            )
            rows.append((batch, packet, -(-packet // BUDGET), out.slots))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E17 coefficient overhead vs batch size",
        ["N msgs", "packet bits", "rounds/pkt", "slots (N<=64 run)"],
        rows,
    )
    per_packet = [row[2] for row in rows]
    assert per_packet == sorted(per_packet)
    assert per_packet[-1] >= 8 * per_packet[0] // 2

def smoke():
    """Tiny E17-style run for the bench-smoke tier."""
    graph = harary_graph(4, 12)
    packing = fractional_cds_packing(graph, rng=3).packing
    comparison = compare_with_tree_broadcast(
        graph, packing, {i: i % 12 for i in range(6)}, budget_bits=24, rng=11
    )
    assert comparison is not None
