"""E20 — Corollary A.1 across workload shapes.

Paper claim: gossip of N messages with per-node maximum η completes in
Õ(η + (N+n)/k) rounds. The η term is workload-dependent: a single hot
source forces η = N while a balanced placement has η = ⌈N/n⌉. We run
the same packing and batch size under the four workload generators and
report rounds against the analytic reference.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.workloads import (
    balanced_workload,
    max_messages_per_node,
    single_source_workload,
    skewed_workload,
    uniform_workload,
)
from repro.apps.broadcast import vertex_broadcast
from repro.core.cds_packing import fractional_cds_packing
from repro.graphs.generators import harary_graph


@pytest.mark.benchmark(group="E20-workloads")
def test_e20_gossip_by_workload_shape(benchmark):
    graph = harary_graph(6, 24)
    n = graph.number_of_nodes()
    packing = fractional_cds_packing(graph, rng=3).packing
    batch = 48
    workloads = [
        ("balanced", balanced_workload(graph, batch)),
        ("uniform", uniform_workload(graph, batch, rng=5)),
        ("skewed(s=1.5)", skewed_workload(graph, batch, 1.5, rng=5)),
        ("single-source", single_source_workload(graph, batch)),
    ]
    rows = []

    def run_all():
        rows.clear()
        sigma = max(packing.size, 1e-9)
        for name, workload in workloads:
            eta = max_messages_per_node(graph, workload)
            outcome = vertex_broadcast(packing, workload, rng=7)
            reference = eta + (batch + n) / sigma
            rows.append(
                (
                    name,
                    eta,
                    outcome.rounds,
                    f"{reference:.1f}",
                    f"{outcome.rounds / reference:.2f}",
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E20 gossip rounds by workload (N={batch}, harary k=6 n=24); "
        "reference = η + (N+n)/σ",
        ["workload", "η", "rounds", "reference", "rounds/ref"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # η ordering must be reflected in the reference and not violated
    # wildly by the measured rounds: single-source ≥ balanced.
    assert by_name["single-source"][1] == batch
    assert by_name["balanced"][1] == batch // graph.number_of_nodes()
    assert by_name["single-source"][2] >= by_name["balanced"][2]

def smoke():
    """Tiny E20-style run for the bench-smoke tier."""
    graph = harary_graph(4, 12)
    packing = fractional_cds_packing(graph, rng=3).packing
    out = vertex_broadcast(packing, balanced_workload(graph, 8), rng=5)
    assert out.rounds > 0
