"""Failure-injection tests: crash-stop and message loss in the simulator."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph
from repro.simulator.algorithms.flooding import flood_extremum
from repro.simulator.faults import (
    FaultPlan,
    RetransmittingFloodProgram,
    simulate_with_faults,
)
from repro.simulator.network import Network
from repro.simulator.runner import Model, simulate


class TestFaultPlan:
    def test_defaults_are_benign(self):
        plan = FaultPlan()
        assert not plan.is_crashed("v", 10)
        assert not any(
            plan.drops("u", "v", round_no) for round_no in range(1, 20)
        )

    def test_crash_schedule(self):
        plan = FaultPlan(crash_rounds={"v": 3})
        assert not plan.is_crashed("v", 2)
        assert plan.is_crashed("v", 3)
        assert plan.is_crashed("v", 99)
        assert not plan.is_crashed("u", 99)

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphValidationError):
            FaultPlan(drop_probability=1.5)

    def test_rejects_negative_crash_round(self):
        with pytest.raises(GraphValidationError):
            FaultPlan(crash_rounds={"v": -1})

    def test_drop_decisions_reproducible(self):
        first = FaultPlan(drop_probability=0.5, rng=7)
        second = FaultPlan(drop_probability=0.5, rng=7)
        queries = [("u", "v", r) for r in range(1, 26)] + [
            ("v", "u", r) for r in range(1, 26)
        ]
        assert [first.drops(*q) for q in queries] == [
            second.drops(*q) for q in queries
        ]

    def test_certain_drop(self):
        plan = FaultPlan(drop_probability=1.0, rng=0)
        assert all(plan.drops("u", "v", r) for r in range(1, 11))

    def test_drop_schedule_normalized_and_validated(self):
        plan = FaultPlan(drop_schedule={("a", "b"): [1, 2, 2]})
        assert plan.drop_schedule[("a", "b")] == frozenset({1, 2})
        with pytest.raises(GraphValidationError):
            FaultPlan(drop_schedule={("a", "b"): [-1]})
        with pytest.raises(GraphValidationError):
            FaultPlan(drop_schedule={("a",): [1]})

    def test_drops_honors_schedule_without_rng(self):
        plan = FaultPlan(drop_schedule={("u", "v"): {3}}, rng=0)
        assert plan.drops("u", "v", 3)
        assert not plan.drops("u", "v", 2)
        assert not plan.drops("v", "u", 3)  # directed

    def test_scheduled_drops_do_not_consume_randomness(self):
        """Scheduled hits are decided before the i.i.d. coin, so adding a
        schedule does not shift the random drop stream."""
        with_schedule = FaultPlan(
            drop_probability=0.5, drop_schedule={("u", "v"): {1}}, rng=7
        )
        without = FaultPlan(drop_probability=0.5, rng=7)
        # First decision hits the schedule (no draw)…
        assert with_schedule.drops("u", "v", 1)
        # …so the following random decisions line up with a fresh plan.
        a = [with_schedule.drops("x", "y", r) for r in range(30)]
        b = [without.drops("x", "y", r) for r in range(30)]
        assert a == b

    def test_reseed_rebinds_decisions(self):
        plan = FaultPlan(drop_probability=0.5, rng=1)
        first = [plan.drops("u", "v", r) for r in range(1, 21)]
        plan.reseed(1)
        assert [plan.drops("u", "v", r) for r in range(1, 21)] == first
        plan.reseed(2)
        assert [plan.drops("u", "v", r) for r in range(1, 21)] != first

    def test_plan_naming_unknown_nodes_rejected(self):
        """A crash/drop entry for a node outside the network would be a
        silent no-op; the runner rejects it loudly instead."""
        from repro.errors import SimulationError

        network = Network(nx.path_graph(4), rng=1)
        with pytest.raises(SimulationError):
            simulate_with_faults(
                network,
                lambda v: RetransmittingFloodProgram(v, horizon=4),
                FaultPlan(crash_rounds={99: 1}),
            )
        with pytest.raises(SimulationError):
            simulate_with_faults(
                network,
                lambda v: RetransmittingFloodProgram(v, horizon=4),
                FaultPlan(drop_schedule={(0, 77): {1}}),
            )

    def test_reference_engine_rejects_drop_schedule(self):
        """The legacy loop cannot honor per-edge schedules; it must fail
        loudly rather than simulate a fault-free run."""
        from repro.errors import SimulationError
        from repro.simulator.runner import engine_context

        network = Network(nx.path_graph(4), rng=1)
        with engine_context("reference"):
            with pytest.raises(SimulationError):
                simulate_with_faults(
                    network,
                    lambda v: RetransmittingFloodProgram(v, horizon=4),
                    FaultPlan(drop_schedule={(0, 1): {1}}),
                )


class TestDropOrderIndependence:
    """Random drops are a pure function of (seed, directed edge, round):
    the decision for one delivery cannot depend on which — or how many —
    other deliveries were decided before it. This is the contract that
    makes fault sweeps reproducible across engines (the sharded engine
    evaluates drops shard-locally, in a different global order than the
    single-process loops)."""

    EDGES = [("a", "b"), ("b", "a"), ("c", "d"), (0, 1), (1, 0), (2, 7)]

    def test_decisions_independent_of_query_order(self):
        forward = FaultPlan(drop_probability=0.5, rng=7)
        backward = FaultPlan(drop_probability=0.5, rng=7)
        queries = [(e, r) for e in self.EDGES for r in range(1, 21)]
        want = {
            (e, r): forward.drops(e[0], e[1], r) for e, r in queries
        }
        for e, r in reversed(queries):
            assert backward.drops(e[0], e[1], r) == want[(e, r)]

    def test_decisions_repeatable_and_stateless(self):
        plan = FaultPlan(drop_probability=0.5, rng=3)
        first = plan.drops("u", "v", 5)
        # Interleave unrelated queries; the original answer must hold.
        for r in range(40):
            plan.drops("x", "y", r)
        assert plan.drops("u", "v", 5) == first

    def test_distinct_edges_and_rounds_get_distinct_coins(self):
        plan = FaultPlan(drop_probability=0.5, rng=11)
        per_edge = [
            [plan.drops(u, v, r) for r in range(1, 65)]
            for u, v in self.EDGES
        ]
        # With 64 fair coins per edge, two identical columns would mean
        # the per-edge streams collapsed onto one another.
        assert len({tuple(row) for row in per_edge}) == len(self.EDGES)
        assert any(any(row) for row in per_edge)
        assert any(not all(row) for row in per_edge)

    def test_drop_rate_tracks_probability(self):
        plan = FaultPlan(drop_probability=0.25, rng=13)
        decisions = [
            plan.drops(u, v, r)
            for u in range(20)
            for v in range(20)
            if u != v
            for r in range(1, 6)
        ]
        rate = sum(decisions) / len(decisions)
        assert 0.2 < rate < 0.3

    def test_explicit_int_seed_is_stable_across_plan_objects(self):
        a = FaultPlan(drop_probability=0.5, rng=42)
        b = FaultPlan(drop_probability=0.5, rng=42)
        for u, v in self.EDGES:
            for r in range(1, 20):
                assert a.drops(u, v, r) == b.drops(u, v, r)

    def test_engines_agree_under_iid_loss(self):
        """The end-to-end payoff: the same seeded faulty run is
        bit-identical whether the indexed or the reference loop iterates
        the deliveries."""
        from repro.simulator.runner import engine_context

        graph = harary_graph(4, 12)

        def run():
            network = Network(graph, rng=2)
            return simulate_with_faults(
                network,
                lambda v: RetransmittingFloodProgram(
                    network.node_id(v), horizon=16
                ),
                FaultPlan(drop_probability=0.4, rng=9),
                rng=5,
            )

        outcomes = {}
        for engine in ("indexed", "reference"):
            with engine_context(engine):
                outcomes[engine] = run()
        assert outcomes["indexed"].outputs == outcomes["reference"].outputs
        assert (
            outcomes["indexed"].metrics.messages
            == outcomes["reference"].metrics.messages
        )


class TestDropPurityProperties:
    """Hypothesis pins the purity contract over arbitrary edge/round
    universes: a drop decision is a function of (seed, directed edge,
    round) alone — query order, interleaving, and plan object identity
    are invisible to it. This is the exact contract the sharded engine
    leans on when workers evaluate drops shard-locally."""

    edges = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=30),
        ).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=12,
        unique=True,
    )

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        edges=edges,
        seed=st.integers(min_value=0, max_value=2**32),
        order=st.randoms(use_true_random=False),
    )
    def test_drops_invariant_under_delivery_order(self, edges, seed, order):
        baseline = FaultPlan(drop_probability=0.5, rng=seed)
        probe = FaultPlan(drop_probability=0.5, rng=seed)
        queries = [(e, r) for e in edges for r in range(1, 9)]
        want = {
            (e, r): baseline.drops(e[0], e[1], r) for e, r in queries
        }
        order.shuffle(queries)
        for e, r in queries:
            assert probe.drops(e[0], e[1], r) == want[(e, r)]

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_reseed_same_int_restores_decisions(self, seed):
        plan = FaultPlan(drop_probability=0.5, rng=seed)
        queries = [("u", "v", r) for r in range(1, 17)] + [
            ("v", "w", r) for r in range(1, 17)
        ]
        first = [plan.drops(*q) for q in queries]
        plan.reseed(seed)
        assert [plan.drops(*q) for q in queries] == first

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        round_no=st.integers(min_value=0, max_value=10_000),
    )
    def test_fresh_plan_objects_agree(self, seed, round_no):
        a = FaultPlan(drop_probability=0.5, rng=seed)
        b = FaultPlan(drop_probability=0.5, rng=seed)
        assert a.drops("x", "y", round_no) == b.drops("x", "y", round_no)


class TestEdgePrefixCacheBound:
    def test_edge_prefix_cache_stays_bounded(self):
        """The per-edge digest-prefix cache holds plain bytes (never
        hashlib objects) and is cleared wholesale at its bound, so a
        sweep over an unbounded edge universe cannot grow the plan."""
        from repro.simulator import faults as faults_mod

        plan = FaultPlan(drop_probability=0.5, rng=1)
        old = faults_mod._EDGE_PREFIX_CACHE_MAX
        faults_mod._EDGE_PREFIX_CACHE_MAX = 64
        try:
            for u in range(40):
                for v in range(5):
                    plan.drops(u, ("sink", v), 1)
            assert len(plan._edge_prefixes) <= 64
            assert all(
                isinstance(prefix, bytes)
                for prefix in plan._edge_prefixes.values()
            )
        finally:
            faults_mod._EDGE_PREFIX_CACHE_MAX = old
        # Decisions are unchanged by cache eviction.
        fresh = FaultPlan(drop_probability=0.5, rng=1)
        assert plan.drops(3, ("sink", 2), 1) == fresh.drops(
            3, ("sink", 2), 1
        )


class TestCrashInjection:
    def test_crashed_node_goes_silent(self):
        """Crash the minimum-value node of a path before its first
        transmission: its value must never spread."""
        graph = nx.path_graph(6)
        network = Network(graph, rng=1)
        values = {v: 100 + v for v in graph.nodes()}
        values[0] = 1  # the global minimum, held by the node we kill
        plan = FaultPlan(crash_rounds={0: 1})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=15),
            plan,
        )
        assert result.output_of(5) == 101  # min among survivors
        assert result.output_of(1) == 101

    def test_crash_mid_protocol_partitions_knowledge(self):
        """Killing the middle of a path at round 2 lets the minimum cross
        only partway."""
        graph = nx.path_graph(7)
        network = Network(graph, rng=1)
        values = {v: 50 + v for v in graph.nodes()}
        values[0] = 1
        plan = FaultPlan(crash_rounds={3: 2})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=20),
            plan,
        )
        # Node 2 heard the minimum before the crash barrier formed…
        assert result.output_of(2) == 1
        # …but node 6 can never hear it (node 3 died holding it); the
        # best value past the barrier is node 3's own 53, which escaped
        # to node 4 in round 1 before the round-2 crash.
        assert result.output_of(6) == 53

    def test_crash_at_round_zero_suppresses_start_traffic(self):
        graph = nx.path_graph(3)
        network = Network(graph, rng=1)
        plan = FaultPlan(crash_rounds={1: 0})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(v, horizon=8),
            plan,
        )
        # Node 1's value (the middle node) never reaches the ends; each
        # endpoint only ever sees its own value.
        assert result.output_of(0) == 0
        assert result.output_of(2) == 2

    def test_live_nodes_still_halt(self):
        graph = nx.cycle_graph(8)
        network = Network(graph, rng=1)
        plan = FaultPlan(crash_rounds={0: 1, 1: 1})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(v, horizon=10),
            plan,
        )
        assert result.halted


class TestDropInjection:
    def test_quiescence_flood_can_stall_under_loss(self):
        """The non-retransmitting flood drops its one chance to forward —
        downstream nodes keep their stale value (the failure mode the
        retransmitting variant exists to fix)."""
        graph = nx.path_graph(8)
        network = Network(graph, rng=1)
        values = {v: 100 + v for v in graph.nodes()}
        values[0] = 1
        plan = FaultPlan(drop_probability=1.0, rng=3)
        from repro.simulator.algorithms.flooding import ExtremumFloodProgram

        result = simulate_with_faults(
            network,
            lambda v: ExtremumFloodProgram(values[v]),
            plan,
        )
        assert result.output_of(7) == 107  # never learned the minimum

    def test_retransmission_defeats_heavy_loss(self):
        """50% i.i.d. loss with a generous horizon still floods a Harary
        graph completely."""
        graph = harary_graph(4, 16)
        network = Network(graph, rng=1)
        values = {v: v for v in graph.nodes()}
        plan = FaultPlan(drop_probability=0.5, rng=5)
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=60),
            plan,
        )
        for v in graph.nodes():
            assert result.output_of(v) == 0

    def test_plan_rng_derived_from_run_seed(self):
        """A plan without its own rng is seeded from the simulate seed:
        one seed reproduces the whole faulty run, end to end."""
        graph = harary_graph(4, 14)

        def run():
            network = Network(graph, rng=1)
            return simulate_with_faults(
                network,
                lambda v: RetransmittingFloodProgram(v, horizon=10),
                FaultPlan(drop_probability=0.5),
                rng=21,
            )

        first, second = run(), run()
        assert first.outputs == second.outputs
        assert first.metrics.messages == second.metrics.messages
        assert first.metrics.bits == second.metrics.bits

    def test_scheduled_edge_drop_blocks_exact_delivery(self):
        """Drop node 0's round-1 transmission to node 1 only: the minimum
        still arrives, exactly one round late."""
        graph = nx.path_graph(5)
        network = Network(graph, rng=1)
        values = {v: 10 + v for v in graph.nodes()}
        values[0] = 1
        blocked = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=12),
            FaultPlan(drop_schedule={(0, 1): {1}}),
        )
        clear = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=12),
            FaultPlan(),
        )
        assert blocked.output_of(4) == 1  # retransmission repaired it
        assert clear.output_of(4) == 1
        # One fewer delivered message in the blocked run.
        assert blocked.metrics.messages == clear.metrics.messages - 1

    def test_zero_probability_matches_reliable_run(self):
        graph = harary_graph(4, 12)
        network = Network(graph, rng=1)
        values = {v: v for v in graph.nodes()}
        faulty = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=12),
            FaultPlan(drop_probability=0.0, rng=9),
        )
        reliable = flood_extremum(network, values)
        for v in graph.nodes():
            assert faulty.output_of(v) == reliable.output_of(v)


class TestRetransmittingProgram:
    def test_rejects_bad_horizon(self):
        with pytest.raises(GraphValidationError):
            RetransmittingFloodProgram(1, horizon=0)

    def test_reliable_flood_matches_plain_flood(self):
        graph = nx.cycle_graph(9)
        network = Network(graph, rng=2)
        values = {v: (v * 7) % 9 for v in graph.nodes()}
        result = simulate(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=12),
            model=Model.V_CONGEST,
        )
        assert all(result.output_of(v) == 0 for v in graph.nodes())

    def test_maximize_mode(self):
        graph = nx.path_graph(5)
        network = Network(graph, rng=2)
        result = simulate(
            network,
            lambda v: RetransmittingFloodProgram(
                v, horizon=10, minimize=False
            ),
        )
        assert all(result.output_of(v) == 4 for v in graph.nodes())
