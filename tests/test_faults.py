"""Failure-injection tests: crash-stop and message loss in the simulator."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph
from repro.simulator.algorithms.flooding import flood_extremum
from repro.simulator.faults import (
    FaultPlan,
    RetransmittingFloodProgram,
    simulate_with_faults,
)
from repro.simulator.network import Network
from repro.simulator.runner import Model, simulate


class TestFaultPlan:
    def test_defaults_are_benign(self):
        plan = FaultPlan()
        assert not plan.is_crashed("v", 10)
        assert not plan.should_drop()

    def test_crash_schedule(self):
        plan = FaultPlan(crash_rounds={"v": 3})
        assert not plan.is_crashed("v", 2)
        assert plan.is_crashed("v", 3)
        assert plan.is_crashed("v", 99)
        assert not plan.is_crashed("u", 99)

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphValidationError):
            FaultPlan(drop_probability=1.5)

    def test_rejects_negative_crash_round(self):
        with pytest.raises(GraphValidationError):
            FaultPlan(crash_rounds={"v": -1})

    def test_drop_decisions_reproducible(self):
        first = FaultPlan(drop_probability=0.5, rng=7)
        second = FaultPlan(drop_probability=0.5, rng=7)
        assert [first.should_drop() for _ in range(50)] == [
            second.should_drop() for _ in range(50)
        ]

    def test_certain_drop(self):
        plan = FaultPlan(drop_probability=1.0, rng=0)
        assert all(plan.should_drop() for _ in range(10))


class TestCrashInjection:
    def test_crashed_node_goes_silent(self):
        """Crash the minimum-value node of a path before its first
        transmission: its value must never spread."""
        graph = nx.path_graph(6)
        network = Network(graph, rng=1)
        values = {v: 100 + v for v in graph.nodes()}
        values[0] = 1  # the global minimum, held by the node we kill
        plan = FaultPlan(crash_rounds={0: 1})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=15),
            plan,
        )
        assert result.output_of(5) == 101  # min among survivors
        assert result.output_of(1) == 101

    def test_crash_mid_protocol_partitions_knowledge(self):
        """Killing the middle of a path at round 2 lets the minimum cross
        only partway."""
        graph = nx.path_graph(7)
        network = Network(graph, rng=1)
        values = {v: 50 + v for v in graph.nodes()}
        values[0] = 1
        plan = FaultPlan(crash_rounds={3: 2})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=20),
            plan,
        )
        # Node 2 heard the minimum before the crash barrier formed…
        assert result.output_of(2) == 1
        # …but node 6 can never hear it (node 3 died holding it); the
        # best value past the barrier is node 3's own 53, which escaped
        # to node 4 in round 1 before the round-2 crash.
        assert result.output_of(6) == 53

    def test_crash_at_round_zero_suppresses_start_traffic(self):
        graph = nx.path_graph(3)
        network = Network(graph, rng=1)
        plan = FaultPlan(crash_rounds={1: 0})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(v, horizon=8),
            plan,
        )
        # Node 1's value (the middle node) never reaches the ends; each
        # endpoint only ever sees its own value.
        assert result.output_of(0) == 0
        assert result.output_of(2) == 2

    def test_live_nodes_still_halt(self):
        graph = nx.cycle_graph(8)
        network = Network(graph, rng=1)
        plan = FaultPlan(crash_rounds={0: 1, 1: 1})
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(v, horizon=10),
            plan,
        )
        assert result.halted


class TestDropInjection:
    def test_quiescence_flood_can_stall_under_loss(self):
        """The non-retransmitting flood drops its one chance to forward —
        downstream nodes keep their stale value (the failure mode the
        retransmitting variant exists to fix)."""
        graph = nx.path_graph(8)
        network = Network(graph, rng=1)
        values = {v: 100 + v for v in graph.nodes()}
        values[0] = 1
        plan = FaultPlan(drop_probability=1.0, rng=3)
        from repro.simulator.algorithms.flooding import ExtremumFloodProgram

        result = simulate_with_faults(
            network,
            lambda v: ExtremumFloodProgram(values[v]),
            plan,
        )
        assert result.output_of(7) == 107  # never learned the minimum

    def test_retransmission_defeats_heavy_loss(self):
        """50% i.i.d. loss with a generous horizon still floods a Harary
        graph completely."""
        graph = harary_graph(4, 16)
        network = Network(graph, rng=1)
        values = {v: v for v in graph.nodes()}
        plan = FaultPlan(drop_probability=0.5, rng=5)
        result = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=60),
            plan,
        )
        for v in graph.nodes():
            assert result.output_of(v) == 0

    def test_zero_probability_matches_reliable_run(self):
        graph = harary_graph(4, 12)
        network = Network(graph, rng=1)
        values = {v: v for v in graph.nodes()}
        faulty = simulate_with_faults(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=12),
            FaultPlan(drop_probability=0.0, rng=9),
        )
        reliable = flood_extremum(network, values)
        for v in graph.nodes():
            assert faulty.output_of(v) == reliable.output_of(v)


class TestRetransmittingProgram:
    def test_rejects_bad_horizon(self):
        with pytest.raises(GraphValidationError):
            RetransmittingFloodProgram(1, horizon=0)

    def test_reliable_flood_matches_plain_flood(self):
        graph = nx.cycle_graph(9)
        network = Network(graph, rng=2)
        values = {v: (v * 7) % 9 for v in graph.nodes()}
        result = simulate(
            network,
            lambda v: RetransmittingFloodProgram(values[v], horizon=12),
            model=Model.V_CONGEST,
        )
        assert all(result.output_of(v) == 0 for v in graph.nodes())

    def test_maximize_mode(self):
        graph = nx.path_graph(5)
        network = Network(graph, rng=2)
        result = simulate(
            network,
            lambda v: RetransmittingFloodProgram(
                v, horizon=10, minimize=False
            ),
        )
        assert all(result.output_of(v) == 4 for v in graph.nodes())
