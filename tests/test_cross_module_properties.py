"""Cross-module hypothesis property tests.

These tie independent implementations to each other: the from-scratch
baselines against the networkx oracles, the sparse certificates against
exact connectivity, the exact tree packing against Tutte/Nash-Williams,
and the decomposition outputs against the baselines. Any divergence
between two code paths that claim the same mathematics fails here.
"""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.mincut import edge_connectivity_exact
from repro.baselines.tree_packing_exact import spanning_tree_packing_number
from repro.baselines.vertex_connectivity_exact import (
    even_tarjan_vertex_connectivity,
)
from repro.graphs.connectivity import (
    edge_connectivity,
    vertex_connectivity,
)
from repro.graphs.generators import harary_graph
from repro.graphs.sampling import karger_edge_partition
from repro.graphs.sparse_certificates import sparse_connectivity_certificate

_slow = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _random_connected(seed: int, n: int, p: float = 0.45):
    graph = nx.gnp_random_graph(n, p, seed=seed)
    if graph.number_of_nodes() == 0 or not nx.is_connected(graph):
        return None
    return graph


@_slow
@given(seed=st.integers(0, 10_000), n=st.integers(4, 12))
def test_three_edge_connectivity_implementations_agree(seed, n):
    """Stoer–Wagner (ours) == networkx flow-based == the λ oracle."""
    graph = _random_connected(seed, n)
    if graph is None:
        return
    ours = edge_connectivity_exact(graph)
    assert ours == nx.edge_connectivity(graph)
    assert ours == edge_connectivity(graph)


@_slow
@given(seed=st.integers(0, 10_000), n=st.integers(4, 11))
def test_two_vertex_connectivity_implementations_agree(seed, n):
    graph = _random_connected(seed, n)
    if graph is None:
        return
    ours, _ = even_tarjan_vertex_connectivity(graph)
    assert ours == vertex_connectivity(graph)


@_slow
@given(seed=st.integers(0, 10_000), n=st.integers(4, 10))
def test_connectivity_inequality_chain(seed, n):
    """k ≤ λ ≤ δ (Whitney) and T ≥ ⌈(λ−1)/2⌉ (Tutte/Nash-Williams)."""
    graph = _random_connected(seed, n)
    if graph is None:
        return
    k = vertex_connectivity(graph)
    lam = edge_connectivity(graph)
    min_degree = min(d for _, d in graph.degree())
    assert k <= lam <= min_degree
    packing = spanning_tree_packing_number(graph)
    assert packing >= math.ceil((lam - 1) / 2)
    assert packing <= lam


@_slow
@given(seed=st.integers(0, 10_000), k=st.integers(1, 4))
def test_sparse_certificate_preserves_connectivity_up_to_k(seed, k):
    """The Nagamochi–Ibaraki certificate keeps λ' = min(λ, k) and at most
    k·n edges — the [49] substrate contract."""
    graph = _random_connected(seed, 12, p=0.5)
    if graph is None:
        return
    certificate = sparse_connectivity_certificate(graph, k)
    assert certificate.number_of_edges() <= k * graph.number_of_nodes()
    lam = edge_connectivity(graph)
    lam_cert = edge_connectivity(certificate)
    assert lam_cert >= min(lam, k)


@_slow
@given(seed=st.integers(0, 10_000), parts=st.integers(1, 4))
def test_karger_partition_is_exact_edge_partition(seed, parts):
    graph = harary_graph(4, 16)
    subgraphs = karger_edge_partition(graph, parts, rng=seed)
    assert len(subgraphs) == parts
    seen = set()
    for part in subgraphs:
        assert set(part.nodes()) == set(graph.nodes())
        for u, v in part.edges():
            edge = frozenset((u, v))
            assert edge not in seen
            assert graph.has_edge(u, v)
            seen.add(edge)
    assert len(seen) == graph.number_of_edges()


@_slow
@given(seed=st.integers(0, 10_000))
def test_packing_size_never_exceeds_connectivity(seed):
    """Any fractional dominating tree packing has size ≤ k (each of the
    k cut vertices carries ≤ 1 weight and every dominating tree must
    touch every vertex cut)."""
    from repro.core.cds_packing import fractional_cds_packing

    graph = harary_graph(4, 14)
    k = vertex_connectivity(graph)
    result = fractional_cds_packing(graph, rng=seed)
    assert result.packing.size <= k + 1e-9
    result.packing.verify()


@_slow
@given(seed=st.integers(0, 10_000))
def test_spanning_packing_size_below_lambda(seed):
    from repro.core.spanning_packing import (
        MwuParameters,
        fractional_spanning_tree_packing,
    )

    graph = harary_graph(4, 12)
    lam = edge_connectivity(graph)
    params = MwuParameters(epsilon=0.3, max_iterations=300)
    packing = fractional_spanning_tree_packing(
        graph, params=params, rng=seed
    ).packing
    assert packing.size <= lam + 1e-9
    packing.verify()


class TestWhitneyTightness:
    """Deterministic spot checks of the inequality chain endpoints."""

    def test_harary_everything_equal(self):
        graph = harary_graph(6, 20)
        assert vertex_connectivity(graph) == 6
        assert edge_connectivity(graph) == 6
        assert min(d for _, d in graph.degree()) == 6

    def test_k_strictly_below_lambda(self):
        """Two K_5s sharing a single vertex-pair bridge structure."""
        graph = nx.Graph()
        left = nx.complete_graph(5)
        right = nx.relabel_nodes(nx.complete_graph(5), {i: i + 5 for i in range(5)})
        graph.update(left)
        graph.update(right)
        graph.add_edges_from([(0, 5), (1, 6)])
        k = vertex_connectivity(graph)
        lam = edge_connectivity(graph)
        assert k == lam == 2  # both cuts are the two bridges/endpoints
        ours, _ = even_tarjan_vertex_connectivity(graph)
        assert ours == k

    def test_lambda_strictly_below_min_degree(self):
        """Two K_6s joined by one edge: δ = 5 but λ = 1."""
        graph = nx.Graph()
        left = nx.complete_graph(6)
        right = nx.relabel_nodes(
            nx.complete_graph(6), {i: i + 6 for i in range(6)}
        )
        graph.update(left)
        graph.update(right)
        graph.add_edge(0, 6)
        assert edge_connectivity_exact(graph) == 1
        assert min(d for _, d in graph.degree()) >= 5
