"""Tests for the greedy CDS baseline (Guha–Khuller line)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.baselines.greedy_cds import (
    greedy_cds_partition,
    greedy_connected_dominating_set,
)
from repro.errors import GraphValidationError
from repro.graphs.connectivity import is_connected_dominating_set
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    torus_grid,
)


class TestGreedyCds:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: nx.path_graph(9),
            lambda: nx.cycle_graph(10),
            lambda: nx.star_graph(8),
            lambda: harary_graph(4, 20),
            lambda: hypercube(4),
            lambda: clique_chain(4, 5),
            lambda: fat_cycle(3, 6),
            lambda: torus_grid(5, 5),
            lambda: nx.complete_graph(6),
        ],
    )
    def test_result_is_cds(self, builder):
        graph = builder()
        cds = greedy_connected_dominating_set(graph)
        assert is_connected_dominating_set(graph, cds)

    def test_star_selects_only_center(self):
        assert greedy_connected_dominating_set(nx.star_graph(7)) == {0}

    def test_complete_graph_selects_one_node(self):
        assert len(greedy_connected_dominating_set(nx.complete_graph(9))) == 1

    def test_path_interior(self):
        cds = greedy_connected_dominating_set(nx.path_graph(6))
        assert is_connected_dominating_set(nx.path_graph(6), cds)
        # Optimal CDS of P6 has the 4 interior nodes.
        assert len(cds) <= 4

    def test_single_node_graph(self):
        graph = nx.Graph()
        graph.add_node("only")
        assert greedy_connected_dominating_set(graph) == {"only"}

    def test_two_node_graph(self):
        graph = nx.path_graph(2)
        cds = greedy_connected_dominating_set(graph)
        assert len(cds) == 1

    def test_rejects_empty(self):
        with pytest.raises(GraphValidationError):
            greedy_connected_dominating_set(nx.Graph())

    def test_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            greedy_connected_dominating_set(graph)

    def test_deterministic(self):
        graph = harary_graph(5, 21)
        assert greedy_connected_dominating_set(
            graph
        ) == greedy_connected_dominating_set(graph)

    def test_random_graphs_give_valid_small_sets(self):
        rng = random.Random(3)
        for _ in range(10):
            graph = nx.gnp_random_graph(16, 0.3, seed=rng.randint(0, 10**6))
            if not nx.is_connected(graph):
                continue
            cds = greedy_connected_dominating_set(graph)
            assert is_connected_dominating_set(graph, cds)
            assert len(cds) < graph.number_of_nodes()


class TestGreedyPartition:
    def test_classes_are_disjoint_cdss(self):
        graph = harary_graph(6, 24)
        classes = greedy_cds_partition(graph, 6)
        assert classes, "highly connected graph must yield at least one CDS"
        used = set()
        for cds in classes:
            assert is_connected_dominating_set(graph, cds)
            assert not (cds & used)
            used |= cds

    def test_limit_respected(self):
        graph = nx.complete_graph(10)
        classes = greedy_cds_partition(graph, 3)
        assert len(classes) == 3

    def test_sparse_graph_yields_single_class(self):
        graph = nx.path_graph(8)
        classes = greedy_cds_partition(graph, 4)
        # A path's CDS uses all interior nodes; at most one class fits.
        assert len(classes) <= 1

    def test_rejects_bad_limit(self):
        with pytest.raises(GraphValidationError):
            greedy_cds_partition(nx.path_graph(4), 0)

    def test_partition_count_scales_with_connectivity(self):
        """More vertex connectivity supports more disjoint CDSs — the
        existential fact behind [12] that the paper's packing mines."""
        low = len(greedy_cds_partition(harary_graph(3, 24), 12))
        high = len(greedy_cds_partition(nx.complete_graph(24), 12))
        assert high >= low
