"""Batch executor: deterministic seeds, byte-identical JSONL, session
reuse, process fan-out equivalence."""

from __future__ import annotations

import io
import json

import pytest

from repro.api import (
    JobSpec,
    derive_seed,
    expand_matrix,
    load_jobs,
    run,
    run_to_jsonl,
)
from repro.errors import GraphValidationError
from repro.fastgraph import IndexedGraph

MATRIX = {
    "graphs": ["harary:4,12", "hypercube:3"],
    "tasks": ["connectivity", "pack_cds"],
    "trials": 2,
}


def _jsonl(jobs, **kwargs) -> str:
    stream = io.StringIO()
    run(jobs, jsonl=stream, **kwargs)
    return stream.getvalue()


class TestJobSpec:
    def test_unknown_task_rejected(self):
        with pytest.raises(GraphValidationError, match="valid tasks"):
            JobSpec(graph="harary:4,12", task="teleport")

    def test_unknown_field_rejected(self):
        with pytest.raises(GraphValidationError, match="valid"):
            JobSpec.from_dict({"graph": "harary:4,12", "speed": 11})

    def test_round_trip(self):
        job = JobSpec(
            graph="harary:4,12", task="broadcast", transport="vertex",
            params={"messages": 4}, label="x",
        )
        assert JobSpec.from_dict(job.to_dict()) == job


class TestMatrixExpansion:
    def test_cross_product_order(self):
        jobs = expand_matrix(MATRIX)
        assert len(jobs) == 8  # 2 graphs x 2 tasks x 2 trials
        assert [j.graph for j in jobs[:4]] == ["harary:4,12"] * 4
        assert [j.task for j in jobs[:2]] == ["connectivity"] * 2
        # trials are label-free duplicates; position-aware seed
        # derivation makes them independent
        assert jobs[0].label is None and jobs[1].label is None
        assert jobs[0] == jobs[1]

    def test_explicit_seeds_pass_through(self):
        jobs = expand_matrix({"graphs": ["hypercube:3"], "seeds": [7, 8]})
        assert [j.seed for j in jobs] == [7, 8]

    def test_params_are_per_task(self):
        jobs = expand_matrix(
            {
                "graphs": ["hypercube:3"],
                "tasks": ["broadcast", "connectivity"],
                "params": {"broadcast": {"messages": 4}},
            }
        )
        by_task = {j.task: j for j in jobs}
        assert by_task["broadcast"].params == {"messages": 4}
        assert by_task["connectivity"].params == {}

    def test_seeds_and_trials_conflict(self):
        with pytest.raises(GraphValidationError, match="not both"):
            expand_matrix(
                {"graphs": ["hypercube:3"], "seeds": [1], "trials": 2}
            )

    def test_unknown_matrix_field(self):
        with pytest.raises(GraphValidationError, match="valid fields"):
            expand_matrix({"graphs": ["hypercube:3"], "speed": 11})

    def test_params_for_unknown_task(self):
        with pytest.raises(GraphValidationError, match="unknown task"):
            expand_matrix(
                {"graphs": ["hypercube:3"], "params": {"teleport": {}}}
            )


class TestSeedDerivation:
    def test_deterministic(self):
        job = JobSpec(graph="harary:4,12", task="pack_cds")
        assert derive_seed(0, 3, job) == derive_seed(0, 3, job)

    def test_varies_by_position_base_and_identity(self):
        job = JobSpec(graph="harary:4,12", task="pack_cds")
        other = JobSpec(graph="harary:4,12", task="connectivity")
        seeds = {
            derive_seed(0, 0, job),
            derive_seed(0, 1, job),
            derive_seed(1, 0, job),
            derive_seed(0, 0, other),
        }
        assert len(seeds) == 4

    def test_explicit_seed_respected_in_rows(self):
        rows = _jsonl([JobSpec(graph="hypercube:3", seed=42)])
        assert json.loads(rows)["seed"] == 42


class TestDeterministicJsonl:
    def test_same_spec_byte_identical(self):
        assert _jsonl(MATRIX) == _jsonl(MATRIX)

    def test_parallel_matches_serial(self):
        serial = _jsonl(MATRIX)
        parallel = _jsonl(MATRIX, processes=2)
        assert parallel == serial

    def test_rows_are_valid_envelopes_in_job_order(self):
        jobs = expand_matrix(MATRIX)
        lines = _jsonl(MATRIX).splitlines()
        assert len(lines) == len(jobs)
        for job, line in zip(jobs, lines):
            row = json.loads(line)
            assert row["graph"] == job.graph
            assert row["task"] == job.task
            assert "timings" not in row

    def test_run_to_jsonl_file(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        results = run_to_jsonl(MATRIX, str(path))
        assert len(path.read_text().splitlines()) == len(results)

    def test_timings_flag_adds_timings(self):
        rows = _jsonl([JobSpec(graph="hypercube:3")], include_timings=True)
        assert "timings" in json.loads(rows)


class TestExecution:
    def test_one_canonicalization_per_graph(self, monkeypatch):
        counts = {"indexed": 0}
        original = IndexedGraph.from_networkx.__func__

        def counting(cls, graph):
            counts["indexed"] += 1
            return original(cls, graph)

        monkeypatch.setattr(
            IndexedGraph, "from_networkx", classmethod(counting)
        )
        run(
            [
                JobSpec(graph="harary:4,12", task="connectivity"),
                JobSpec(graph="harary:4,12", task="pack_cds"),
                JobSpec(graph="harary:4,12", task="broadcast"),
                JobSpec(graph="hypercube:3", task="pack_spanning"),
            ]
        )
        assert counts["indexed"] == 2  # one per distinct graph

    def test_serial_results_keep_raw(self):
        results = run([JobSpec(graph="hypercube:3", task="pack_cds")])
        assert results[0].raw is not None
        assert results[0].raw.packing.size > 0

    def test_error_row_does_not_abort(self):
        results = run(
            [
                JobSpec(graph="mystery:1", task="connectivity"),
                JobSpec(graph="hypercube:3", task="connectivity"),
            ]
        )
        assert "error" in results[0].payload
        assert "unknown graph family" in results[0].payload["error"]
        assert "lower_bound" in results[1].payload

    def test_malformed_params_become_error_rows_not_crashes(self):
        # Non-ReproError failures (TypeError from bad kwargs here) must
        # also produce error rows, serial and parallel alike.
        jobs = [
            JobSpec(
                graph="hypercube:3", task="broadcast",
                params={"messages": "four"},
            ),
            JobSpec(
                graph="harary:4,12", task="connectivity",
                params={"bogus": 1},
            ),
            JobSpec(graph="harary:4,12", task="connectivity"),
        ]
        for processes in (None, 2):
            results = run(jobs, processes=processes)
            assert "error" in results[0].payload
            assert "error" in results[1].payload
            assert "lower_bound" in results[2].payload

    def test_matrix_base_seed_is_honored(self):
        matrix = {"graphs": ["hypercube:3"], "tasks": ["pack_cds"]}
        default = _jsonl(matrix)
        reseeded = _jsonl({**matrix, "base_seed": 999})
        assert json.loads(default)["seed"] != json.loads(reseeded)["seed"]
        # an explicit run() argument still wins over the matrix field
        explicit = _jsonl({**matrix, "base_seed": 999}, base_seed=0)
        assert explicit == default

    def test_transport_routing(self):
        results = run(
            [
                JobSpec(
                    graph="harary:4,12", task="broadcast",
                    transport="edge", params={"messages": 4},
                ),
                JobSpec(
                    graph="harary:4,12", task="simulate",
                    transport="e-congest",
                ),
            ]
        )
        assert results[0].payload["transport"] == "edge"
        assert results[1].payload["model"] == "e-congest"

    def test_transport_on_wrong_task(self):
        results = run(
            [JobSpec(graph="hypercube:3", task="pack_cds", transport="edge")]
        )
        assert "error" in results[0].payload

    def test_load_jobs_from_file(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(MATRIX))
        assert len(load_jobs(str(path))) == 8


class TestBatchSweepBridge:
    def test_sweep_rows_from_envelopes(self):
        from repro.analysis.sweeps import aggregate, batch_sweep

        result = batch_sweep(
            {
                "graphs": ["harary:4,12"],
                "tasks": ["connectivity"],
                "trials": 2,
            }
        )
        assert len(result.records) == 2
        (point, mean, low, high), = aggregate(result, "lower_bound")
        assert dict(point)["graph"] == "harary:4,12"
        assert low <= mean <= high

    def test_sweep_marks_errors(self):
        from repro.analysis.sweeps import batch_sweep

        result = batch_sweep([{"graph": "mystery:1"}])
        assert result.records[0].value("error") == 1.0
