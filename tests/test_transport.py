"""Transport layer: model semantics, budgets, and the congested clique."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ModelViolationError
from repro.graphs.generators import harary_graph
from repro.simulator.algorithms.clique import (
    clique_degree_census,
    clique_exchange,
    clique_extremum,
)
from repro.simulator.algorithms.flooding import flood_extremum
from repro.simulator.network import Network
from repro.simulator.node import NodeProgram
from repro.simulator.runner import Model, SyncRunner, simulate
from repro.simulator.transport import (
    CliqueTransport,
    ECongestTransport,
    Transport,
    VCongestTransport,
    build_transport,
    default_message_budget,
)


class TestBuildTransport:
    def test_model_mapping(self):
        net = Network(nx.cycle_graph(6), rng=1)
        assert isinstance(
            build_transport(Model.V_CONGEST, net), VCongestTransport
        )
        assert isinstance(
            build_transport(Model.E_CONGEST, net), ECongestTransport
        )
        assert isinstance(
            build_transport(Model.CONGESTED_CLIQUE, net), CliqueTransport
        )

    def test_budget_defaults_to_log_n(self):
        net = Network(nx.cycle_graph(6), rng=1)
        transport = build_transport(Model.V_CONGEST, net)
        assert transport.bits_per_message == default_message_budget(6)

    def test_explicit_budget_respected(self):
        net = Network(nx.cycle_graph(6), rng=1)
        transport = build_transport(Model.E_CONGEST, net, bits_per_message=7)
        assert transport.bits_per_message == 7

    def test_runner_accepts_custom_transport(self):
        """The transport parameter is the plug point for new models."""

        class HalfDuplex(ECongestTransport):
            """Deliver only to higher-index neighbors."""

            name = "half-duplex"

            def _build_fanout(self, network):
                return [
                    tuple(r for r in row if r > i)
                    for i, row in enumerate(network.neighbor_index_table())
                ]

        net = Network(nx.path_graph(4), rng=1)
        runner = SyncRunner(net, transport=HalfDuplex(net))

        class Shout(NodeProgram):
            def on_start(self, ctx):
                return ctx.node_id

            def on_round(self, ctx, inbox):
                ctx.halt(sorted(m.payload for m in inbox.values()))
                return None

        result = runner.run(lambda v: Shout())
        # Node 0 has no lower-index neighbor speaking to it.
        assert result.output_of(0) == []
        assert result.output_of(1) == [net.node_id(0)]


class TestCliqueTransportSemantics:
    def test_fanout_is_everyone_else(self):
        net = Network(nx.path_graph(5), rng=1)
        transport = CliqueTransport(net)
        for i in range(5):
            assert transport.fanout(i) == tuple(
                j for j in range(5) if j != i
            )

    def test_broadcast_reaches_non_neighbors(self):
        # A path graph has diameter n-1 under CONGEST; the clique floods
        # the minimum in a single round.
        graph = nx.path_graph(9)
        net = Network(graph, rng=3)
        values = {v: v + 100 for v in graph.nodes()}
        values[8] = 1
        result = clique_extremum(net, values)
        assert result.halted
        assert result.metrics.rounds == 1
        assert all(result.output_of(v) == 1 for v in graph.nodes())
        # n(n-1) messages: everyone told everyone.
        assert result.metrics.messages == 9 * 8

    def test_congest_needs_diameter_rounds_for_same_task(self):
        graph = nx.path_graph(9)
        net = Network(graph, rng=3)
        values = {v: v + 100 for v in graph.nodes()}
        values[8] = 1
        congest = flood_extremum(net, values)
        assert congest.metrics.rounds >= 8  # the Θ(D) contrast

    def test_addressing_any_node_allowed(self):
        graph = nx.path_graph(6)
        net = Network(graph, rng=2)

        class SendToFar(NodeProgram):
            """Node 0 messages node 5 directly — a non-edge of the input."""

            def __init__(self, node):
                self._node = node

            def on_start(self, ctx):
                if self._node == 0:
                    return {5: ("hi",)}
                return None

            def on_round(self, ctx, inbox):
                ctx.halt(
                    {s: m.payload for s, m in inbox.items()} or None
                )
                return None

        result = simulate(
            net, lambda v: SendToFar(v), model=Model.CONGESTED_CLIQUE
        )
        assert result.output_of(5) == {0: ("hi",)}

    def test_self_addressing_rejected(self):
        net = Network(nx.path_graph(4), rng=2)

        class Narcissist(NodeProgram):
            def on_start(self, ctx):
                return {ctx.node: 1}

        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: Narcissist(), model=Model.CONGESTED_CLIQUE)

    def test_unknown_receiver_rejected(self):
        net = Network(nx.path_graph(4), rng=2)

        class Wild(NodeProgram):
            def on_start(self, ctx):
                return {"nowhere": 1}

        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: Wild(), model=Model.CONGESTED_CLIQUE)

    def test_budget_still_enforced(self):
        net = Network(nx.path_graph(4), rng=2)

        class Chatterbox(NodeProgram):
            def on_start(self, ctx):
                return tuple(range(10_000))

        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: Chatterbox(), model=Model.CONGESTED_CLIQUE)


class TestCliquePrimitives:
    def test_exchange_learns_all_payloads(self):
        graph = harary_graph(4, 10)
        net = Network(graph, rng=5)
        payloads = {v: net.node_id(v) % 17 for v in graph.nodes()}
        heard, result = clique_exchange(net, payloads)
        assert result.metrics.rounds == 1
        for v in graph.nodes():
            assert set(heard[v]) == set(graph.nodes()) - {v}
            for u, payload in heard[v].items():
                assert payload == payloads[u]

    def test_degree_census(self):
        graph = nx.path_graph(7)
        net = Network(graph, rng=4)
        census, result = clique_degree_census(net)
        assert result.metrics.rounds == 1
        expected = {v: graph.degree(v) for v in graph.nodes()}
        for v in graph.nodes():
            assert census[v] == expected

    def test_silent_nodes_stay_silent(self):
        net = Network(nx.path_graph(5), rng=4)
        heard, _ = clique_exchange(net, {0: 42})
        assert heard[3] == {0: 42}
        assert heard[0] == {}


class TestVCongestUnchanged:
    """The existing model semantics survive the transport extraction."""

    def test_dict_still_rejected(self):
        net = Network(nx.cycle_graph(4), rng=1)

        class PerNeighbor(NodeProgram):
            def on_start(self, ctx):
                return {nb: 1 for nb in ctx.neighbors}

        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: PerNeighbor(), model=Model.V_CONGEST)

    def test_non_neighbor_still_rejected_in_e_congest(self):
        net = Network(nx.cycle_graph(6), rng=1)

        class Wild(NodeProgram):
            def on_start(self, ctx):
                return {3: 1}  # node 3 is not a neighbor of node 0

        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: Wild(), model=Model.E_CONGEST)
