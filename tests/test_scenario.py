"""Scenario layer: declarative runs, the program registry, resilience app."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.apps.resilience import (
    cut_drop_schedule,
    flood_loss_sweep,
    flood_partition_test,
)
from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph
from repro.simulator.faults import FaultPlan
from repro.simulator.network import Network
from repro.simulator.runner import Model
from repro.simulator.scenario import (
    PROGRAM_REGISTRY,
    Scenario,
    ScenarioProgram,
    available_programs,
    register_program,
    resolve_program,
    run_scenario,
)


class TestRegistry:
    def test_stock_programs_present(self):
        names = {p.name for p in available_programs()}
        assert {
            "flood-min",
            "flood-max",
            "retransmit-flood",
            "bfs",
            "mis",
            "clique-min",
        } <= names

    def test_unknown_program_rejected(self):
        with pytest.raises(GraphValidationError):
            resolve_program("definitely-not-registered")

    def test_register_makes_program_runnable(self):
        from repro.simulator.algorithms.flooding import ExtremumFloodProgram

        program = ScenarioProgram(
            name="test-const-flood",
            description="flood of constant values (test only)",
            build=lambda net: (lambda v: ExtremumFloodProgram(7)),
        )
        register_program(program)
        try:
            run = Scenario(topology="harary:4,10", program="test-const-flood").run()
            assert all(
                run.result.output_of(v) == 7 for v in run.network.nodes
            )
        finally:
            del PROGRAM_REGISTRY["test-const-flood"]


class TestScenarioRun:
    def test_topology_spec_string(self):
        run = Scenario(topology="harary:4,12", program="flood-min", seed=3).run()
        assert run.network.n == 12
        true_min = min(run.network.node_id(v) for v in run.network.nodes)
        assert all(
            run.result.output_of(v) == true_min for v in run.network.nodes
        )

    def test_topology_graph_and_builder(self):
        graph = nx.cycle_graph(8)
        by_graph = Scenario(topology=graph, program="flood-min", seed=1).run()
        by_builder = Scenario(
            topology=lambda: nx.cycle_graph(8), program="flood-min", seed=1
        ).run()
        assert by_graph.result.outputs == by_builder.result.outputs

    def test_seed_reproducibility(self):
        runs = [
            Scenario(topology="regular:4,20,2", program="mis", seed=5).run()
            for _ in range(2)
        ]
        assert runs[0].result.outputs == runs[1].result.outputs
        assert runs[0].rounds == runs[1].rounds

    def test_trace_sink(self):
        run = Scenario(
            topology="harary:4,10", program="flood-min", seed=2, trace=True
        ).run()
        assert run.trace is not None
        assert {e.node for e in run.trace.events_in_round(0)} == set(
            run.network.nodes
        )

    def test_summary_fields(self):
        run = Scenario(topology="harary:4,10", program="flood-min", seed=2).run()
        summary = run.summary()
        assert summary["n"] == 10
        assert summary["rounds"] == run.rounds
        assert summary["rounds_per_sec"] > 0
        assert run.rounds_per_sec == pytest.approx(
            summary["rounds_per_sec"]
        )

    def test_model_override_and_clique(self):
        run = Scenario(
            topology="harary:4,12", program="clique-min", seed=4
        ).run()
        assert run.rounds == 1
        assert run.result.halted

    def test_engine_override_matches_default(self):
        indexed = Scenario(
            topology="harary:4,12", program="flood-min", seed=9
        ).run()
        reference = Scenario(
            topology="harary:4,12",
            program="flood-min",
            seed=9,
            engine="reference",
        ).run()
        assert indexed.result.outputs == reference.result.outputs
        assert indexed.rounds == reference.rounds

    def test_fault_plan_rng_derived_from_seed(self):
        def run_once():
            return Scenario(
                topology="harary:4,14",
                program="retransmit-flood",
                seed=6,
                fault_plan=FaultPlan(drop_probability=0.4),
            ).run()

        first, second = run_once(), run_once()
        assert first.result.outputs == second.result.outputs
        assert first.result.metrics.messages == second.result.metrics.messages

    def test_with_overrides_sweep_helper(self):
        base = Scenario(topology="harary:4,10", program="flood-min", seed=1)
        bigger = base.with_overrides(topology="harary:4,20")
        assert bigger.seed == 1
        assert run_scenario(bigger).network.n == 20

    def test_bad_topology_rejected(self):
        with pytest.raises(GraphValidationError):
            Scenario(topology=123, program="flood-min").run()


class TestResilienceApp:
    def test_zero_loss_completes(self):
        graph = harary_graph(4, 12)
        (report,) = flood_loss_sweep(graph, [0.0], seed=3)
        assert report.completed
        assert report.coverage == 1.0

    def test_total_loss_fails(self):
        graph = harary_graph(4, 12)
        (report,) = flood_loss_sweep(graph, [1.0], seed=3)
        assert not report.completed
        # Nobody but the holder of the minimum can know it.
        assert report.coverage == pytest.approx(1 / 12)

    def test_sweep_is_monotone_in_reports(self):
        graph = harary_graph(4, 12)
        reports = flood_loss_sweep(graph, [0.0, 1.0], seed=3)
        assert reports[0].coverage >= reports[-1].coverage

    def test_cut_schedule_covers_both_directions(self):
        graph = nx.path_graph(6)
        schedule = cut_drop_schedule(graph, side={0, 1, 2}, rounds=[1, 2])
        assert schedule == {
            (2, 3): frozenset({1, 2}),
            (3, 2): frozenset({1, 2}),
        }

    def test_cut_schedule_rejects_unknown_nodes(self):
        with pytest.raises(GraphValidationError):
            cut_drop_schedule(nx.path_graph(4), side={99}, rounds=[1])

    def test_blockade_then_recovery(self):
        """A temporary cut blockade delays but cannot stop the flood."""
        graph = nx.path_graph(8)
        report = flood_partition_test(
            graph, side={0, 1, 2, 3}, blocked_rounds=range(1, 4), seed=2
        )
        assert report.completed  # horizon outlives the blockade

    def test_permanent_blockade_partitions_knowledge(self):
        graph = nx.path_graph(8)
        report = flood_partition_test(
            graph,
            side={0, 1, 2, 3},
            blocked_rounds=range(1, 200),
            horizon=30,
            seed=2,
        )
        assert not report.completed
        # Exactly one side of the cut learned the minimum.
        assert 0 < report.coverage < 1
        assert report.coverage in (pytest.approx(0.5), pytest.approx(4 / 8))

    def test_deterministic_without_seed_dependence(self):
        """Scheduled drops involve no randomness: two different seeds
        still lose exactly the same deliveries (coverage identical)."""
        graph = nx.path_graph(8)
        a = flood_partition_test(
            graph, side={0, 1, 2, 3}, blocked_rounds=range(1, 200),
            horizon=30, seed=2,
        )
        b = flood_partition_test(
            graph, side={0, 1, 2, 3}, blocked_rounds=range(1, 200),
            horizon=30, seed=77,
        )
        assert a.coverage == b.coverage
        assert a.rounds == b.rounds
