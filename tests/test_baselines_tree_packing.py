"""Tests for the Roskind–Tarjan exact spanning tree packing baseline."""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.tree_packing_exact import (
    edge_disjoint_spanning_forests,
    max_spanning_tree_packing,
    spanning_tree_packing_number,
)
from repro.errors import GraphValidationError
from repro.graphs.generators import fat_cycle, harary_graph, hypercube


def _assert_edge_disjoint(forests):
    seen = set()
    for forest in forests:
        for u, v in forest.edges():
            edge = frozenset((u, v))
            assert edge not in seen, "forests share an edge"
            seen.add(edge)


class TestForestUnion:
    def test_forests_are_forests_and_disjoint(self):
        graph = harary_graph(6, 18)
        forests = edge_disjoint_spanning_forests(graph, 3)
        _assert_edge_disjoint(forests)
        for forest in forests:
            assert nx.is_forest(forest)
            assert set(forest.nodes()) == set(graph.nodes())

    def test_union_is_maximum_on_complete_graph(self):
        """K_6 has 15 edges and packs 3 spanning trees = 15 edges total."""
        forests = edge_disjoint_spanning_forests(nx.complete_graph(6), 3)
        assert sum(f.number_of_edges() for f in forests) == 15
        for forest in forests:
            assert forest.number_of_edges() == 5

    def test_k1_returns_spanning_tree(self):
        graph = hypercube(3)
        (forest,) = edge_disjoint_spanning_forests(graph, 1)
        assert nx.is_tree(forest)
        assert set(forest.nodes()) == set(graph.nodes())

    def test_excess_forests_stay_small(self):
        """Asking for more forests than the graph can fill leaves the
        extras partial (union is still maximum = m for sparse graphs)."""
        graph = nx.cycle_graph(8)
        forests = edge_disjoint_spanning_forests(graph, 3)
        _assert_edge_disjoint(forests)
        assert sum(f.number_of_edges() for f in forests) == 8

    def test_rejects_bad_k(self):
        with pytest.raises(GraphValidationError):
            edge_disjoint_spanning_forests(nx.path_graph(3), 0)

    def test_rejects_empty_graph(self):
        with pytest.raises(GraphValidationError):
            edge_disjoint_spanning_forests(nx.Graph(), 1)

    def test_augmenting_swaps_find_hidden_packing(self):
        """A graph where naive greedy fails but augmentation succeeds:
        two spanning trees exist in K_4 only via edge exchanges once the
        first tree grabs a bad subset; the matroid union must still find
        both."""
        graph = nx.complete_graph(4)
        forests = edge_disjoint_spanning_forests(graph, 2)
        assert [f.number_of_edges() for f in forests] == [3, 3]
        for forest in forests:
            assert nx.is_tree(forest)


class TestPackingNumber:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: nx.path_graph(5), 1),
            (lambda: nx.cycle_graph(6), 1),
            (lambda: nx.complete_graph(4), 2),
            (lambda: nx.complete_graph(6), 3),
            (lambda: nx.complete_graph(7), 3),
            # K_{3,3} has 9 edges; two spanning trees would need 10.
            (lambda: nx.complete_bipartite_graph(3, 3), 1),
            (lambda: nx.complete_bipartite_graph(4, 4), 2),
            (lambda: hypercube(3), 1),
            (lambda: hypercube(4), 2),
        ],
    )
    def test_known_values(self, builder, expected):
        assert spanning_tree_packing_number(builder()) == expected

    def test_disconnected_is_zero(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert spanning_tree_packing_number(graph) == 0

    def test_single_node_is_zero(self):
        graph = nx.Graph()
        graph.add_node("v")
        assert spanning_tree_packing_number(graph) == 0

    def test_tutte_nash_williams_lower_bound(self):
        """Packing number >= ceil((λ-1)/2) on every test family — the
        existential bound our Theorem 1.3 reproduction is measured
        against."""
        for graph in [
            harary_graph(4, 12),
            harary_graph(6, 14),
            fat_cycle(3, 5),
            hypercube(4),
            nx.complete_graph(8),
        ]:
            lam = nx.edge_connectivity(graph)
            packing = spanning_tree_packing_number(graph)
            assert packing >= math.ceil((lam - 1) / 2)
            assert packing <= lam

    def test_max_packing_returns_valid_trees(self):
        graph = harary_graph(6, 15)
        trees = max_spanning_tree_packing(graph)
        assert len(trees) == spanning_tree_packing_number(graph)
        _assert_edge_disjoint(trees)
        for tree in trees:
            assert nx.is_tree(tree)
            assert set(tree.nodes()) == set(graph.nodes())

    def test_max_packing_empty_for_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert max_spanning_tree_packing(graph) == []


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 10))
def test_union_size_is_maximum_by_matroid_rank(seed, n):
    """The union's total size must match the k-fold graphic matroid rank
    computed independently by the Nash-Williams min formula over *vertex
    subsets* — checked exhaustively for small n.

    rank_k(G) = min over partitions P of V of sum over parts... checking
    the (simpler, sufficient for these sizes) spanning-trees criterion:
    k trees exist iff for every partition of V into r parts, at least
    k(r-1) edges cross between parts (Tutte/Nash-Williams). We verify
    agreement between that criterion and the algorithm's verdict for
    k = 2.
    """
    graph = nx.gnp_random_graph(n, 0.6, seed=seed)
    if not nx.is_connected(graph):
        return
    nodes = sorted(graph.nodes())
    k = 2

    def crossing(partition):
        index = {}
        for part_id, part in enumerate(partition):
            for v in part:
                index[v] = part_id
        return sum(1 for u, v in graph.edges() if index[u] != index[v])

    # Enumerate partitions via restricted growth strings (n <= 10).
    def partitions(seq):
        if not seq:
            yield []
            return
        head, rest = seq[0], seq[1:]
        for sub in partitions(rest):
            for i in range(len(sub)):
                yield sub[:i] + [[head] + sub[i]] + sub[i + 1 :]
            yield [[head]] + sub

    tutte_ok = all(
        crossing(p) >= k * (len(p) - 1)
        for p in partitions(nodes)
        if len(p) > 1
    )
    algorithm_ok = spanning_tree_packing_number(graph) >= k
    assert tutte_ok == algorithm_ok
