"""Tree-routed broadcast schedulers (Appendix A, Corollaries 1.4/1.5)."""

import networkx as nx
import pytest

from repro.apps.broadcast import (
    assign_messages_to_trees,
    edge_broadcast,
    vertex_broadcast,
)
from repro.core.cds_packing import construct_cds_packing
from repro.core.spanning_packing import MwuParameters, fractional_spanning_tree_packing
from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph

FAST = MwuParameters(epsilon=0.25, beta_factor=3.0)


@pytest.fixture(scope="module")
def dom_packing():
    g = harary_graph(6, 24)
    return construct_cds_packing(g, 6, rng=101).packing


@pytest.fixture(scope="module")
def span_packing():
    g = harary_graph(5, 18)
    return fractional_spanning_tree_packing(g, params=FAST, rng=102).packing


class TestAssignment:
    def test_messages_all_assigned(self, dom_packing):
        assignment = assign_messages_to_trees(dom_packing.trees, 50, rng=1)
        assert len(assignment) == 50
        assert all(0 <= t < len(dom_packing.trees) for t in assignment.values())

    def test_weight_proportionality_rough(self, dom_packing):
        """With equal weights, assignment is near-uniform over trees."""
        assignment = assign_messages_to_trees(dom_packing.trees, 600, rng=2)
        counts = [0] * len(dom_packing.trees)
        for t in assignment.values():
            counts[t] += 1
        expected = 600 / len(counts)
        assert all(0.4 * expected <= c <= 2.0 * expected for c in counts)

    def test_empty_packing_rejected(self, dom_packing):
        with pytest.raises(GraphValidationError):
            assign_messages_to_trees([], 3)


class TestVertexBroadcast:
    def test_all_messages_delivered(self, dom_packing):
        sources = {i: i % 24 for i in range(12)}
        out = vertex_broadcast(dom_packing, sources, rng=3)
        assert out.n_messages == 12
        assert out.rounds > 0

    def test_throughput_scales_with_load(self, dom_packing):
        """More messages => proportionally more rounds (steady throughput),
        the Corollary 1.4 shape."""
        small = vertex_broadcast(dom_packing, {i: i % 24 for i in range(8)}, rng=4)
        large = vertex_broadcast(dom_packing, {i: i % 24 for i in range(32)}, rng=4)
        assert large.rounds <= 10 * small.rounds
        assert large.throughput >= 0.5 * small.throughput

    def test_vertex_congestion_counted(self, dom_packing):
        out = vertex_broadcast(dom_packing, {0: 0, 1: 5}, rng=5)
        assert out.max_vertex_congestion >= 1
        assert sum(out.node_transmissions.values()) >= 2

    def test_single_message(self, dom_packing):
        out = vertex_broadcast(dom_packing, {0: 7}, rng=6)
        assert out.rounds >= 1
        assert out.throughput <= 1.0


class TestEdgeBroadcast:
    def test_all_messages_delivered(self, span_packing):
        sources = {i: i % 18 for i in range(10)}
        out = edge_broadcast(span_packing, sources, rng=7)
        assert out.n_messages == 10
        assert out.rounds > 0

    def test_edge_congestion_counted(self, span_packing):
        out = edge_broadcast(span_packing, {0: 0, 1: 9}, rng=8)
        assert out.max_edge_congestion >= 1

    def test_rounds_reasonable(self, span_packing):
        """Completion within a small multiple of N/size + diameter."""
        n_messages = 12
        out = edge_broadcast(
            span_packing, {i: i % 18 for i in range(n_messages)}, rng=9
        )
        g = span_packing.graph
        bound = 20 * (n_messages / max(span_packing.size, 1) + nx.diameter(g) + 1)
        assert out.rounds <= bound
