"""The recursive class assignment: jump-start, bridging, matching
(Section 3.1 steps 1-3; Lemmas 4.1 and 4.4 observable behaviour)."""

import random

import networkx as nx
import pytest

from repro.core.bridging import (
    assign_layer,
    closed_neighborhood,
    jump_start,
    run_recursion,
)
from repro.core.virtual_graph import VirtualGraph, VirtualNode
from repro.graphs.connectivity import is_dominating_set
from repro.graphs.generators import harary_graph


class TestClosedNeighborhood:
    def test_includes_self(self):
        g = nx.path_graph(3)
        assert set(closed_neighborhood(g, 1)) == {0, 1, 2}

    def test_isolated_in_subgraph(self):
        g = nx.Graph()
        g.add_node(0)
        assert closed_neighborhood(g, 0) == [0]


class TestJumpStart:
    def test_assigns_exactly_first_half(self):
        g = harary_graph(4, 12)
        vg = VirtualGraph(g, layers=8, n_classes=3)
        jump_start(vg, rng=1)
        assert len(vg.assignment) == 12 * 3 * 4  # n * 3 types * L/2 layers
        layers_used = {vn.layer for vn in vg.assignment}
        assert layers_used == {1, 2, 3, 4}

    def test_domination_lemma_observable(self):
        """Lemma 4.1: after the jump-start each class dominates (w.h.p.;
        here: a seed-checked instance with comfortable margins)."""
        g = harary_graph(6, 24)
        vg = VirtualGraph(g, layers=8, n_classes=3)
        jump_start(vg, rng=7)
        for members in vg.projected_class_sets():
            assert is_dominating_set(g, members)


class TestAssignLayer:
    def test_all_new_nodes_assigned(self):
        g = harary_graph(4, 12)
        vg = VirtualGraph(g, layers=4, n_classes=2)
        jump_start(vg, rng=2)
        stats = assign_layer(vg, 3, rng=3)
        assert stats.layer == 3
        for v in g.nodes():
            for vtype in (1, 2, 3):
                assert VirtualNode(v, 3, vtype) in vg.assignment

    def test_excess_never_increases(self):
        """First half of Lemma 4.4: M_{ℓ+1} <= M_ℓ (given domination)."""
        g = harary_graph(6, 24)
        vg = VirtualGraph(g, layers=8, n_classes=3)
        jump_start(vg, rng=4)
        for layer in range(5, 9):
            stats = assign_layer(vg, layer, rng=layer)
            assert stats.excess_after <= stats.excess_before

    def test_stats_fields_consistent(self):
        g = harary_graph(4, 16)
        vg = VirtualGraph(g, layers=4, n_classes=2)
        jump_start(vg, rng=5)
        stats = assign_layer(vg, 3, rng=6)
        assert stats.matched + stats.random_type2 == 16
        assert stats.matched <= stats.bridging_candidates or stats.matched == 0


class TestRecursion:
    def test_full_run_assigns_everything(self):
        g = harary_graph(4, 14)
        vg = VirtualGraph(g, layers=6, n_classes=2)
        history = run_recursion(vg, rng=8)
        assert len(history) == 3  # layers L/2+1 .. L
        assert len(vg.assignment) == 14 * 3 * 6

    def test_excess_trajectory_monotone(self):
        g = harary_graph(6, 30)
        vg = VirtualGraph(g, layers=8, n_classes=3)
        history = run_recursion(vg, rng=9)
        trajectory = [history[0].excess_before] + [
            s.excess_after for s in history
        ]
        assert all(a >= b for a, b in zip(trajectory, trajectory[1:]))

    def test_classes_connected_at_end(self):
        """Connectivity of all classes — the Theorem 1.1 outcome (a
        seed-checked instance of the w.h.p. claim)."""
        g = harary_graph(6, 30)
        vg = VirtualGraph(g, layers=8, n_classes=3)
        run_recursion(vg, rng=10)
        assert vg.excess_components() == 0

    def test_deterministic_under_seed(self):
        g = harary_graph(4, 12)
        vg1 = VirtualGraph(g, layers=4, n_classes=2)
        vg2 = VirtualGraph(g, layers=4, n_classes=2)
        run_recursion(vg1, rng=11)
        run_recursion(vg2, rng=11)
        assert vg1.assignment == vg2.assignment
