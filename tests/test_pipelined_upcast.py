"""Tests for the Lemma 5.1 pipelined upcast primitive."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.generators import clique_chain, harary_graph
from repro.simulator.algorithms.bfs import build_bfs_tree
from repro.simulator.algorithms.pipelined_upcast import (
    parallel_upcast_rounds,
    pipelined_upcast,
)
from repro.simulator.network import Network


def _network(graph, seed=1):
    return Network(graph, rng=seed)


class TestPipelinedUpcast:
    def test_all_items_arrive(self):
        network = _network(nx.path_graph(8))
        items = {v: [(0, ("item", v))] for v in range(8)}
        result = pipelined_upcast(network, items)
        assert sorted(item for _, item in result.collected) == sorted(
            ("item", v) for v in range(8)
        )

    def test_streams_are_separable(self):
        network = _network(harary_graph(4, 12))
        items = {
            v: [(stream, (stream, v)) for stream in range(3)]
            for v in network.nodes
        }
        result = pipelined_upcast(network, items)
        for stream in range(3):
            assert len(result.items_of_stream(stream)) == 12

    def test_rounds_within_pipeline_bound(self):
        """Measured rounds ≤ depth + total items (+ small constant) —
        the pipelining claim of Lemma 5.1."""
        for graph in [
            nx.path_graph(12),
            harary_graph(4, 16),
            clique_chain(3, 4),
        ]:
            network = _network(graph)
            items = {v: [(0, v), (1, v)] for v in network.nodes}
            result = pipelined_upcast(network, items)
            assert result.rounds <= result.pipeline_bound + 2

    def test_pipelining_beats_sequential(self):
        """η streams share the tree: total rounds must be far below η
        separate upcasts (η · (depth + per-stream items))."""
        network = _network(nx.path_graph(16))
        streams = 4
        items = {
            v: [(stream, v) for stream in range(streams)]
            for v in network.nodes
        }
        result = pipelined_upcast(network, items)
        sequential = streams * (result.tree_depth + 16)
        assert result.rounds < sequential

    def test_empty_holders_allowed(self):
        network = _network(nx.cycle_graph(6))
        result = pipelined_upcast(network, {0: [(0, "only")]})
        assert result.total_items == 1
        assert result.collected[0][1] == "only"

    def test_no_items_at_all(self):
        network = _network(nx.path_graph(4))
        result = pipelined_upcast(network, {})
        assert result.total_items == 0
        assert result.collected == []

    def test_items_already_at_root(self):
        network = _network(nx.path_graph(4))
        root = min(network.nodes, key=network.node_id)
        result = pipelined_upcast(network, {root: [(0, "here")]}, root=root)
        assert result.collected == [(0, "here")]

    def test_explicit_root_and_prebuilt_tree(self):
        network = _network(harary_graph(4, 10))
        tree, _ = build_bfs_tree(network, 3)
        items = {v: [(0, v)] for v in network.nodes}
        result = pipelined_upcast(network, items, bfs_tree=tree)
        assert result.root == 3
        assert result.total_items == 10

    def test_root_tree_mismatch_rejected(self):
        network = _network(nx.path_graph(5))
        tree, _ = build_bfs_tree(network, 0)
        with pytest.raises(GraphValidationError):
            pipelined_upcast(network, {}, root=4, bfs_tree=tree)

    def test_unknown_holder_rejected(self):
        network = _network(nx.path_graph(4))
        with pytest.raises(GraphValidationError):
            pipelined_upcast(network, {99: [(0, "x")]})

    def test_malformed_item_rejected(self):
        network = _network(nx.path_graph(4))
        with pytest.raises(GraphValidationError):
            pipelined_upcast(network, {0: [(0, "x", "extra")]})

    def test_heavier_streams_scale_linearly(self):
        """Doubling total items roughly doubles the item term (the D
        term stays fixed) — the shape behind Õ(D + √(nλ))."""
        network = _network(nx.path_graph(10))
        light = pipelined_upcast(
            network, {v: [(0, v)] for v in network.nodes}
        )
        heavy = pipelined_upcast(
            network,
            {v: [(s, v) for s in range(4)] for s_ in [0] for v in network.nodes},
        )
        assert heavy.total_items == 4 * light.total_items
        assert heavy.rounds > light.rounds
        assert heavy.rounds <= heavy.pipeline_bound + 2


class TestAnalyticBound:
    def test_value(self):
        assert parallel_upcast_rounds(5, [10, 20]) == 35

    def test_empty_streams(self):
        assert parallel_upcast_rounds(7, []) == 7

    def test_rejects_negative(self):
        with pytest.raises(GraphValidationError):
            parallel_upcast_rounds(-1, [])
        with pytest.raises(GraphValidationError):
            parallel_upcast_rounds(1, [-2])
