"""Wire-protocol properties: envelopes over real sockets, adversarially.

The daemon's framing contract (:mod:`repro.service.protocol`) is pinned
three ways: hypothesis-generated :class:`Result` envelopes must survive
an ``encode → socket → decode`` round trip bit for bit (including
through a real TCP socket pair with deliberately fragmented writes);
malformed-but-complete frames must come back as *recoverable* errors
while oversized frames are fatal; and a live daemon must answer typed
error envelopes for garbage without dropping well-behaved concurrent
clients.
"""

from __future__ import annotations

import io
import json
import socket
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.envelope import Result
from repro.errors import WireProtocolError
from repro.service import (
    ReproServer,
    encode_frame,
    error_envelope,
    is_error,
    read_frame,
    write_frame,
)

# JSON-clean payload values (what envelopes carry after encode_value).
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=16),
    lambda children: (
        st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=8), children, max_size=3)
    ),
    max_leaves=10,
)

_envelopes = st.builds(
    Result,
    task=st.sampled_from(
        ["connectivity", "pack_cds", "simulate", "error", "stats"]
    ),
    graph=st.text(max_size=20),
    fingerprint=st.text(
        alphabet="0123456789abcdef", min_size=0, max_size=16
    ),
    n=st.integers(min_value=0, max_value=10**6),
    m=st.integers(min_value=0, max_value=10**6),
    seed=st.none() | st.integers(min_value=-(2**31), max_value=2**31),
    params=st.dictionaries(st.text(max_size=8), _json_values, max_size=4),
    payload=st.dictionaries(st.text(max_size=8), _json_values, max_size=4),
)


@settings(max_examples=60, deadline=None)
@given(envelope=_envelopes)
def test_frame_roundtrip_in_memory(envelope):
    """encode_frame → read_frame is the identity on envelope dicts."""
    body = envelope.to_dict()
    stream = io.BytesIO(encode_frame(body))
    decoded = read_frame(stream)
    assert decoded == json.loads(json.dumps(body))
    restored = Result.from_dict(decoded)
    assert restored.canonical_json() == envelope.canonical_json()


@settings(max_examples=20, deadline=None)
@given(envelope=_envelopes, chunk=st.integers(min_value=1, max_value=7))
def test_frame_roundtrip_over_socket_pair(envelope, chunk):
    """Fragmented writes over a real socket still decode to one frame.

    The payload is dribbled ``chunk`` bytes at a time, so ``read_frame``
    must reassemble partial reads transparently.
    """
    left, right = socket.socketpair()
    try:
        data = encode_frame(envelope.to_dict())

        def dribble():
            for start in range(0, len(data), chunk):
                left.sendall(data[start:start + chunk])

        writer = threading.Thread(target=dribble)
        writer.start()
        with right.makefile("rb") as stream:
            decoded = read_frame(stream)
        writer.join()
        assert decoded == json.loads(json.dumps(envelope.to_dict()))
    finally:
        left.close()
        right.close()


def test_read_frame_eof_and_malformed():
    assert read_frame(io.BytesIO(b"")) is None  # clean EOF
    with pytest.raises(WireProtocolError) as excinfo:
        read_frame(io.BytesIO(b"{not json}\n"))
    assert excinfo.value.recoverable
    with pytest.raises(WireProtocolError) as excinfo:
        read_frame(io.BytesIO(b'"a string, not an object"\n'))
    assert excinfo.value.recoverable
    with pytest.raises(WireProtocolError) as excinfo:
        read_frame(io.BytesIO(b"\xff\xfe invalid utf8\n"))
    assert excinfo.value.recoverable


def test_read_frame_oversized_is_fatal():
    huge = b'{"pad": "' + b"x" * 256 + b'"}\n'
    with pytest.raises(WireProtocolError) as excinfo:
        read_frame(io.BytesIO(huge), max_bytes=64)
    assert not excinfo.value.recoverable


def test_error_envelope_shape():
    envelope = error_envelope("boom", "bad-request", op="estimate")
    body = envelope.to_dict()
    assert is_error(body)
    assert body["payload"] == {"error": "boom", "error_type": "bad-request"}
    assert body["params"] == {"op": "estimate"}
    # still a valid Result on the client side
    assert Result.from_dict(body).task == "error"


# -- against a live daemon -------------------------------------------------


@pytest.fixture
def daemon():
    server = ReproServer(("127.0.0.1", 0))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02}
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()
        assert not thread.is_alive()


def _client(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
    return sock, sock.makefile("rb"), sock.makefile("wb")


def test_daemon_answers_malformed_line_and_keeps_serving(daemon):
    sock, reader, writer = _client(daemon)
    try:
        writer.write(b"this is not json\n")
        writer.flush()
        response = read_frame(reader)
        assert is_error(response)
        assert response["payload"]["error_type"] == "protocol"
        # same connection still works afterwards
        write_frame(writer, {"op": "ping"})
        assert read_frame(reader)["task"] == "ping"
    finally:
        sock.close()


def test_daemon_closes_connection_on_oversized_frame(daemon):
    daemon.max_frame_bytes = 1024
    sock, reader, writer = _client(daemon)
    try:
        writer.write(b'{"pad": "' + b"x" * 4096 + b'"}\n')
        writer.flush()
        response = read_frame(reader)
        assert is_error(response)
        assert response["payload"]["error_type"] == "protocol-fatal"
        assert reader.readline() == b""  # server hung up
    finally:
        sock.close()
    # the daemon itself survives: a new connection works
    sock2, reader2, writer2 = _client(daemon)
    try:
        write_frame(writer2, {"op": "ping"})
        assert read_frame(reader2)["task"] == "ping"
    finally:
        sock2.close()


def test_daemon_request_id_echo_and_unknown_op(daemon):
    sock, reader, writer = _client(daemon)
    try:
        write_frame(writer, {"op": "ping", "id": 7})
        response = read_frame(reader)
        assert response["id"] == 7 and response["task"] == "ping"
        write_frame(writer, {"op": "no-such-op", "id": "x"})
        response = read_frame(reader)
        assert response["id"] == "x"
        assert is_error(response)
        assert response["payload"]["error_type"] == "service"
    finally:
        sock.close()


def test_daemon_concurrent_clients_share_warm_sessions(daemon):
    """N concurrent clients hammer one graph; every response is a valid
    envelope and the daemon canonicalizes the graph once."""
    results = []
    lock = threading.Lock()

    def client(worker: int):
        sock, reader, writer = _client(daemon)
        try:
            for i in range(5):
                write_frame(
                    writer,
                    {"op": "estimate", "graph": "harary:4,12", "seed": 1,
                     "id": f"{worker}:{i}"},
                )
                response = read_frame(reader)
                with lock:
                    results.append(response)
        finally:
            sock.close()

    threads = [threading.Thread(target=client, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 20
    canonical = {
        Result.from_dict(r).canonical_json() for r in results
    }
    assert len(canonical) == 1  # identical envelope for everyone
    assert not any(is_error(r) for r in results)
    stats = daemon.core.handle({"op": "stats"})["payload"]
    assert stats["cache"]["misses"] == 1  # one session built, ever
    assert stats["cache"]["hits"] == 19
