"""Tests for the distributed integral spanning tree packing."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.core.integral_packing import integral_spanning_packing
from repro.core.integral_packing_distributed import (
    distributed_integral_spanning_packing,
)
from repro.errors import GraphValidationError, PackingConstructionError
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import fat_cycle, harary_graph


class TestDistributedIntegralSpanning:
    def test_valid_edge_disjoint_packing(self):
        graph = harary_graph(8, 24)
        result = distributed_integral_spanning_packing(graph, rng=3)
        result.packing.verify()
        assert result.packing.is_edge_disjoint()
        assert result.size >= 1
        for wt in result.packing.trees:
            assert wt.weight == 1.0
            assert nx.is_tree(wt.tree)
            assert set(wt.tree.nodes()) == set(graph.nodes())

    def test_size_tracks_connectivity(self):
        low = distributed_integral_spanning_packing(
            harary_graph(4, 24), rng=5
        ).size
        high = distributed_integral_spanning_packing(
            harary_graph(16, 24), rng=5
        ).size
        assert high >= low

    def test_round_accounting_present(self):
        graph = fat_cycle(3, 5)
        result = distributed_integral_spanning_packing(graph, rng=7)
        assert result.total_rounds >= 1
        assert result.total_rounds == 1 + result.mst_rounds.total_rounds
        assert result.connected_parts <= result.parts

    def test_matches_centralized_twin_shape(self):
        """Same split rule: distributed and centralized variants produce
        comparable sizes on the same input."""
        graph = harary_graph(12, 30)
        distributed = distributed_integral_spanning_packing(graph, rng=11)
        centralized = integral_spanning_packing(graph, rng=11)
        assert abs(distributed.size - len(centralized.trees)) <= 2

    def test_part_count_formula(self):
        graph = harary_graph(10, 26)
        lam = edge_connectivity(graph)
        result = distributed_integral_spanning_packing(
            graph, parts_factor=0.5, rng=13
        )
        expected = max(1, int(0.5 * lam / math.log(26)))
        assert result.parts == expected

    def test_single_part_degenerates_to_one_tree(self):
        graph = harary_graph(4, 16)  # λ/ln n < 2 → one part
        result = distributed_integral_spanning_packing(graph, rng=1)
        assert result.parts == 1
        assert result.size == 1

    def test_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            distributed_integral_spanning_packing(graph)

    def test_rejects_bad_factor(self):
        with pytest.raises(GraphValidationError):
            distributed_integral_spanning_packing(
                harary_graph(4, 12), parts_factor=0.0
            )

    def test_explicit_lambda_respected(self):
        graph = harary_graph(8, 24)
        result = distributed_integral_spanning_packing(
            graph, lam=8, parts_factor=1.0, rng=17
        )
        assert result.parts == max(1, int(8 / math.log(24)))
