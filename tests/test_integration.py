"""End-to-end flows crossing the whole stack (the README scenarios)."""

import math

import networkx as nx
import pytest

from repro.apps.broadcast import vertex_broadcast
from repro.apps.gossip import gossip
from repro.core.cds_packing import fractional_cds_packing
from repro.core.packing_tester import cds_partition_test_centralized
from repro.core.spanning_packing import MwuParameters, fractional_spanning_tree_packing
from repro.core.vertex_connectivity import approximate_vertex_connectivity
from repro.graphs.connectivity import (
    edge_connectivity,
    is_connected_dominating_set,
    vertex_connectivity,
)
from repro.graphs.generators import harary_graph, random_regular_connected

FAST = MwuParameters(epsilon=0.25, beta_factor=3.0)


class TestFullVertexPipeline:
    def test_pack_then_estimate_then_gossip(self):
        """The paper's pipeline: decompose -> approximate k -> disseminate."""
        g = harary_graph(6, 30)
        k = vertex_connectivity(g)

        result = fractional_cds_packing(g, k=k, rng=201)
        result.packing.verify()
        for wt in result.packing:
            assert is_connected_dominating_set(g, wt.tree.nodes())

        est = approximate_vertex_connectivity(g, rng=202)
        assert est.contains(k)

        outcome = gossip(result.packing, rng=203)
        assert outcome.rounds > 0
        # Information-theoretic floor: N messages over at most k per round.
        assert outcome.rounds >= outcome.n_messages / (k + 1) - 1

    def test_packing_survives_tester(self):
        """A produced packing projected to a partition sample passes the
        deterministic tester for the classes it claims."""
        g = harary_graph(6, 24)
        result = fractional_cds_packing(g, k=6, rng=204)
        for wt in result.packing:
            assert is_connected_dominating_set(g, set(wt.tree.nodes()))


class TestFullEdgePipeline:
    def test_pack_then_verify_then_account(self):
        g = random_regular_connected(6, 20, rng=205)
        lam = edge_connectivity(g)
        result = fractional_spanning_tree_packing(g, params=FAST, rng=206)
        result.packing.verify()
        assert result.size <= lam + 1e-9
        target = max(1, math.ceil((lam - 1) / 2))
        assert result.size >= 0.5 * target

    def test_edge_loads_and_membership(self):
        g = harary_graph(5, 18)
        result = fractional_spanning_tree_packing(g, params=FAST, rng=207)
        per_edge = result.packing.trees_per_edge()
        n = g.number_of_nodes()
        # Theorem 1.3: each edge in O(log^3 n) trees (generous constant).
        bound = 60 * math.log(n) ** 3
        assert max(per_edge.values()) <= bound


class TestCrossDriverAgreement:
    def test_both_drivers_certify_same_graph(self):
        from repro.core.cds_packing import construct_cds_packing
        from repro.core.cds_packing_distributed import distributed_cds_packing

        g = harary_graph(4, 16)
        central = construct_cds_packing(g, 4, rng=208)
        dist = distributed_cds_packing(g, 4, rng=208)
        k = vertex_connectivity(g)
        assert central.size <= k + 1e-9
        assert dist.result.size <= k + 1e-9
