"""Edge cases and failure-mode coverage across the stack."""

import networkx as nx
import pytest

from repro.errors import (
    GraphValidationError,
    ModelViolationError,
    PackingConstructionError,
)
from repro.core.bridging import assign_layer, jump_start
from repro.core.cds_packing import construct_cds_packing
from repro.core.spanning_packing import (
    MwuParameters,
    fractional_spanning_tree_packing,
)
from repro.core.vertex_connectivity import (
    approximate_vertex_connectivity_distributed,
)
from repro.core.virtual_graph import VirtualGraph
from repro.graphs.generators import harary_graph
from repro.simulator.algorithms.multikey_flood import multikey_flood
from repro.simulator.network import Network


class TestTinyGraphs:
    def test_two_node_graph_packs(self):
        g = nx.Graph([(0, 1)])
        result = construct_cds_packing(g, 1, rng=1)
        result.packing.verify()
        assert result.size >= 0.5

    def test_two_node_spanning(self):
        g = nx.Graph([(0, 1)])
        result = fractional_spanning_tree_packing(g, rng=2)
        result.packing.verify()
        assert result.size == pytest.approx(1.0)

    def test_triangle(self):
        g = nx.complete_graph(3)
        result = construct_cds_packing(g, 2, rng=3)
        result.packing.verify()

    def test_star_low_connectivity(self):
        g = nx.star_graph(6)
        result = construct_cds_packing(g, 1, rng=4)
        result.packing.verify()
        # The center is the only CDS core; every tree must contain it.
        for wt in result.packing:
            assert 0 in wt.tree.nodes()


class TestAblationFlags:
    def test_flags_reachable_and_still_assign_everything(self):
        g = harary_graph(4, 14)
        for use_b in (True, False):
            for use_c in (True, False):
                vg = VirtualGraph(g, layers=4, n_classes=3)
                jump_start(vg, rng=5)
                stats = assign_layer(
                    vg,
                    3,
                    rng=6,
                    use_deactivation=use_b,
                    require_type3_witness=use_c,
                )
                assert stats.matched + stats.random_type2 == 14

    def test_disabling_witness_increases_matches(self):
        """Without condition (c), far more (useless) matches happen —
        the ablation signal of bench_ablation.py in miniature."""
        g = harary_graph(6, 40)
        totals = {}
        for use_c in (True, False):
            matched = 0
            for seed in range(3):
                vg = VirtualGraph(g, layers=8, n_classes=24)
                jump_start(vg, rng=seed)
                for layer in range(5, 9):
                    stats = assign_layer(
                        vg, layer, rng=seed + layer,
                        require_type3_witness=use_c,
                    )
                    matched += stats.matched
            totals[use_c] = matched
        assert totals[False] >= totals[True]


class TestMultikeyBudget:
    def test_oversubscribed_keys_rejected(self):
        """Declaring keys_bound=1 while flooding many keys must trip the
        model's bit budget — the meta-round accounting is enforced."""
        g = nx.complete_graph(6)
        net = Network(g, rng=7)
        many_keys = {v: {i: v * 1000 + i for i in range(64)} for v in net.nodes}
        allowed = {
            v: {i: set(g.neighbors(v)) for i in range(64)} for v in net.nodes
        }
        with pytest.raises(ModelViolationError):
            multikey_flood(net, many_keys, allowed, keys_bound=1)


class TestDistributedVcApprox:
    def test_interval_and_rounds(self):
        from repro.graphs.connectivity import vertex_connectivity

        g = harary_graph(4, 16)
        estimate, dist = approximate_vertex_connectivity_distributed(
            g, k_guess=4, rng=8
        )
        assert estimate.contains(vertex_connectivity(g))
        assert dist.meta_rounds > 0

    def test_guess_loop_without_k(self):
        g = harary_graph(4, 14)
        estimate, dist = approximate_vertex_connectivity_distributed(g, rng=9)
        assert estimate.lower_bound >= 1


class TestExplicitLambda:
    def test_spanning_with_given_lambda(self):
        g = harary_graph(6, 18)
        result = fractional_spanning_tree_packing(
            g, lam=6, params=MwuParameters(epsilon=0.2), rng=10
        )
        assert result.lam == 6
        result.packing.verify()

    def test_underestimated_lambda_still_valid(self):
        """A too-small λ hint lowers the target but never breaks validity."""
        g = harary_graph(8, 18)
        result = fractional_spanning_tree_packing(
            g, lam=4, params=MwuParameters(epsilon=0.2), rng=11
        )
        result.packing.verify()
        assert result.target == 2
