"""Tests for the Karger sparsification min-cut approximation ([32])."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines.approx_mincut import (
    sample_probability,
    sparsified_min_cut,
)
from repro.baselines.mincut import edge_connectivity_exact
from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph, hypercube, torus_grid


class TestSampleProbability:
    def test_caps_at_one(self):
        assert sample_probability(10, 1, 0.5) == 1.0

    def test_decreases_with_connectivity(self):
        low = sample_probability(1000, 10, 0.5)
        high = sample_probability(1000, 100, 0.5)
        assert high < low <= 1.0

    def test_decreases_with_epsilon(self):
        tight = sample_probability(1000, 100, 0.2)
        loose = sample_probability(1000, 100, 0.8)
        assert loose < tight

    def test_rejects_bad_floor(self):
        with pytest.raises(GraphValidationError):
            sample_probability(10, 0, 0.5)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(GraphValidationError):
            sample_probability(10, 4, 0.0)
        with pytest.raises(GraphValidationError):
            sample_probability(10, 4, 1.0)


class TestSparsifiedMinCut:
    def test_exact_on_small_graphs(self):
        """At this scale p saturates to 1: exact answers, verifying the
        plumbing end to end."""
        for graph in [harary_graph(4, 14), hypercube(3), torus_grid(3, 4)]:
            result = sparsified_min_cut(graph, epsilon=0.5, rng=1)
            assert result.estimate == edge_connectivity_exact(graph)
            assert result.sample_probability == 1.0
            assert result.compression == 1.0

    def test_cut_side_is_nontrivial(self):
        graph = harary_graph(4, 16)
        result = sparsified_min_cut(graph, epsilon=0.5, rng=2)
        assert 0 < len(result.cut_side) < graph.number_of_nodes()

    def test_sparsification_kicks_in_on_dense_graphs(self):
        """K_60 has λ = 59 ≫ the sampling threshold: the skeleton must
        be strictly smaller and the estimate within (1 ± ε)·λ."""
        graph = nx.complete_graph(60)
        lam = graph.number_of_nodes() - 1
        result = sparsified_min_cut(graph, epsilon=0.5, rng=3)
        assert result.sample_probability < 1.0
        assert result.skeleton_edges < result.original_edges
        assert 0.4 * lam <= result.estimate <= 1.6 * lam

    def test_estimate_scales_by_probability(self):
        graph = nx.complete_graph(50)
        result = sparsified_min_cut(graph, epsilon=0.6, rng=4)
        assert result.estimate == pytest.approx(
            result.skeleton_cut_value / result.sample_probability
        )

    def test_explicit_floor_of_one_is_exact(self):
        graph = harary_graph(6, 18)
        result = sparsified_min_cut(
            graph, epsilon=0.5, connectivity_floor=1, rng=5
        )
        assert result.estimate == edge_connectivity_exact(graph)

    def test_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            sparsified_min_cut(graph)

    def test_rejects_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        with pytest.raises(GraphValidationError):
            sparsified_min_cut(graph)

    def test_deterministic_under_seed(self):
        graph = nx.complete_graph(40)
        first = sparsified_min_cut(graph, epsilon=0.5, rng=9)
        second = sparsified_min_cut(graph, epsilon=0.5, rng=9)
        assert first.estimate == second.estimate
        assert first.skeleton_edges == second.skeleton_edges

    def test_approximation_quality_over_trials(self):
        """Mean relative error across seeds stays within ε on K_50."""
        graph = nx.complete_graph(50)
        lam = 49
        errors = []
        for seed in range(8):
            result = sparsified_min_cut(graph, epsilon=0.5, rng=seed)
            errors.append(abs(result.estimate - lam) / lam)
        assert sum(errors) / len(errors) <= 0.5
