"""Oblivious routing congestion competitiveness (Corollary 1.6)."""

import math

import pytest

from repro.apps.oblivious_routing import (
    edge_congestion_report,
    vertex_congestion_report,
)
from repro.core.cds_packing import construct_cds_packing
from repro.core.spanning_packing import MwuParameters, fractional_spanning_tree_packing
from repro.graphs.generators import harary_graph

FAST = MwuParameters(epsilon=0.25, beta_factor=3.0)


@pytest.fixture(scope="module")
def instance():
    g = harary_graph(6, 24)
    dom = construct_cds_packing(g, 6, rng=121).packing
    span = fractional_spanning_tree_packing(g, params=FAST, rng=122).packing
    sources = {i: i % 24 for i in range(24)}
    return g, dom, span, sources


class TestVertexCongestion:
    def test_report_fields(self, instance):
        g, dom, _, sources = instance
        rep = vertex_congestion_report(dom, sources, k=6, rng=1)
        assert rep.measured >= 1
        assert rep.lower_bound >= 1
        assert rep.n_messages == 24

    def test_competitiveness_within_log_factor(self, instance):
        """Corollary 1.6a: O(log n)-competitive vertex congestion; allow a
        generous constant."""
        g, dom, _, sources = instance
        rep = vertex_congestion_report(dom, sources, k=6, rng=2)
        n = g.number_of_nodes()
        assert rep.competitiveness <= 30 * math.log(n)

    def test_lower_bound_uses_cut(self, instance):
        g, dom, _, sources = instance
        rep = vertex_congestion_report(dom, sources, k=6, rng=3)
        assert rep.lower_bound >= len(sources) / 6 - 1e-9


class TestEdgeCongestion:
    def test_competitiveness_constant_ish(self, instance):
        """Corollary 1.6b: O(1)-competitive edge congestion."""
        g, _, span, sources = instance
        rep = edge_congestion_report(span, sources, lam=6, rng=4)
        assert rep.competitiveness <= 30

    def test_lower_bound_sane(self, instance):
        g, _, span, sources = instance
        rep = edge_congestion_report(span, sources, lam=6, rng=5)
        assert rep.lower_bound >= len(sources) / 6 - 1e-9
