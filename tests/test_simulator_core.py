"""Simulator core: messages, network, runner, model enforcement."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import harary_graph

from repro.errors import (
    GraphValidationError,
    ModelViolationError,
    SimulationError,
)
from repro.simulator.message import Message, payload_bits
from repro.simulator.metrics import (
    AnalyticRoundCost,
    SimulationMetrics,
    _log_star,
)
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SyncRunner, default_message_budget, simulate


class TestPayloadBits:
    def test_small_int(self):
        assert payload_bits(0) == 1
        assert payload_bits(5) == 4

    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1

    def test_float(self):
        assert payload_bits(1.5) == 64

    def test_string(self):
        assert payload_bits("ab") == 18

    def test_tuple_sums(self):
        single = payload_bits(7)
        assert payload_bits((7, 7)) == 2 * (single + 2)

    def test_rejects_dict_payload(self):
        with pytest.raises(ModelViolationError):
            payload_bits({"a": 1})

    def test_message_build(self):
        msg = Message.build(0, (1, 2))
        assert msg.sender == 0
        assert msg.bits == payload_bits((1, 2))

    def test_message_equality_and_hash(self):
        a, b = Message.build(0, (1, 2)), Message.build(0, (1, 2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Message.build(1, (1, 2))
        assert len({a, b}) == 1  # usable in sets/dict keys


class TestNetwork:
    def test_ids_distinct(self):
        net = Network(nx.cycle_graph(10), rng=1)
        ids = [net.node_id(v) for v in net.nodes]
        assert len(set(ids)) == 10

    def test_neighbors_match_graph(self):
        g = nx.path_graph(5)
        net = Network(g, rng=1)
        assert set(net.neighbors(2)) == {1, 3}
        assert net.degree(0) == 1

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            Network(g)

    def test_allows_disconnected_when_permitted(self):
        g = nx.Graph([(0, 1), (2, 3)])
        net = Network(g, require_connected=False)
        assert net.n == 4

    def test_diameter_cached(self):
        net = Network(nx.cycle_graph(8), rng=1)
        assert net.diameter() == 4

    def test_deterministic_ids_under_seed(self):
        g = nx.cycle_graph(6)
        n1, n2 = Network(g, rng=9), Network(g, rng=9)
        assert [n1.node_id(v) for v in n1.nodes] == [
            n2.node_id(v) for v in n2.nodes
        ]

    def test_index_view_round_trips(self):
        g = nx.path_graph(7)
        net = Network(g, rng=1)
        for v in net.nodes:
            assert net.node_at(net.index_of(v)) == v
        assert net.index_map == {v: i for i, v in enumerate(net.nodes)}

    def test_neighbor_indices_match_neighbor_labels(self):
        g = harary_graph(4, 12)
        net = Network(g, rng=2)
        for v in net.nodes:
            i = net.index_of(v)
            assert tuple(net.node_at(j) for j in net.neighbor_indices(i)) == (
                net.neighbors(v)
            )
        assert len(net.neighbor_index_table()) == net.n

    def test_node_by_id_inverts_node_id(self):
        net = Network(nx.cycle_graph(9), rng=3)
        for v in net.nodes:
            assert net.node_by_id(net.node_id(v)) == v

    def test_indexed_graph_exposed(self):
        net = Network(nx.cycle_graph(5), rng=1)
        assert net.indexed.n == 5
        assert net.indexed.m == net.m == 5

    def test_id_draw_attempt_budget_raises(self):
        """A degenerate RNG that always returns the same id must fail
        loudly instead of spinning forever."""

        class StuckRng(random.Random):
            def getrandbits(self, _bits):
                return 7

        with pytest.raises(SimulationError):
            Network(nx.path_graph(3), rng=StuckRng())


class _EchoOnce(NodeProgram):
    """Broadcasts its id once, halts after hearing anything."""

    def on_start(self, ctx):
        return ctx.node_id

    def on_round(self, ctx, inbox):
        ctx.halt(sorted(m.payload for m in inbox.values()))
        return None


class _PerNeighborSender(NodeProgram):
    def on_start(self, ctx):
        return {nb: ("x",) for nb in ctx.neighbors}

    def on_round(self, ctx, inbox):
        ctx.halt()
        return None


class _Chatterbox(NodeProgram):
    """Sends an oversized message."""

    def on_start(self, ctx):
        return tuple(range(10_000))


class _Forever(NodeProgram):
    def on_round(self, ctx, inbox):
        return 1

    def on_start(self, ctx):
        return 1


class TestRunner:
    def test_echo_outputs(self):
        net = Network(nx.cycle_graph(5), rng=2)
        result = simulate(net, lambda v: _EchoOnce())
        assert result.halted
        for v in net.nodes:
            expected = sorted(net.node_id(u) for u in net.neighbors(v))
            assert result.outputs[v] == expected

    def test_v_congest_rejects_per_neighbor(self):
        net = Network(nx.cycle_graph(4), rng=1)
        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: _PerNeighborSender(), model=Model.V_CONGEST)

    def test_e_congest_allows_per_neighbor(self):
        net = Network(nx.cycle_graph(4), rng=1)
        result = simulate(net, lambda v: _PerNeighborSender(), model=Model.E_CONGEST)
        assert result.halted

    def test_message_size_enforced(self):
        net = Network(nx.cycle_graph(4), rng=1)
        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: _Chatterbox())

    def test_max_rounds_raises(self):
        net = Network(nx.cycle_graph(4), rng=1)
        with pytest.raises(SimulationError):
            simulate(net, lambda v: _Forever(), max_rounds=10)

    def test_metrics_accumulate(self):
        net = Network(nx.cycle_graph(6), rng=3)
        result = simulate(net, lambda v: _EchoOnce())
        assert result.metrics.rounds >= 1
        assert result.metrics.messages == 12  # each node broadcasts once
        assert result.metrics.bits > 0

    def test_addressing_non_neighbor_rejected(self):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                return {"nonexistent": 1}

        net = Network(nx.cycle_graph(4), rng=1)
        with pytest.raises(ModelViolationError):
            simulate(net, lambda v: Bad(), model=Model.E_CONGEST)


class TestMetrics:
    def test_merge_adds(self):
        a = SimulationMetrics()
        a.record_round(5, 100, 20)
        b = SimulationMetrics()
        b.record_round(3, 50, 30)
        a.merge(b)
        assert a.rounds == 2
        assert a.messages == 8
        assert a.bits == 150
        assert a.max_message_bits == 30

    def test_phase_attribution(self):
        m = SimulationMetrics()
        m.record_phase("x", 5)
        m.record_phase("x", 3)
        assert m.phase_rounds["x"] == 8

    def test_meta_rounds(self):
        m = SimulationMetrics()
        for _ in range(16):
            m.record_round(0, 0, 0)
        assert m.meta_rounds(256) == 2  # 16 rounds / log2(256)

    def test_log_star(self):
        assert _log_star(2) >= 1
        assert _log_star(65536) <= 6

    def test_analytic_costs_positive(self):
        assert AnalyticRoundCost.kutten_peleg_mst(100, 5).rounds > 5
        assert AnalyticRoundCost.thurimella_components(100, 5, 3).rounds == 3
        assert AnalyticRoundCost.ghaffari_kuhn_mincut(100, 5).rounds > 0

    def test_budget_scales_with_log_n(self):
        assert default_message_budget(2**20) > default_message_budget(4)


@settings(max_examples=30, deadline=None)
@given(
    st.one_of(
        st.integers(-(2**40), 2**40),
        st.booleans(),
        st.none(),
        st.text(max_size=8),
        st.tuples(st.integers(0, 255), st.integers(0, 255)),
    )
)
def test_payload_bits_positive_property(payload):
    assert payload_bits(payload) >= 1
