"""CDS-packing kernel equivalence: indexed pipeline vs preserved reference.

The fastgraph port of :mod:`repro.core.cds_packing` (index-side
recursion, union-find validity testing, index-side BFS tree extraction)
must be **bit-identical** to the preserved pre-kernel implementation
(:mod:`repro.core.cds_packing_reference`) under a fixed seed: same RNG
consumption, same valid classes, same trees edge-for-edge, same float
weights, same per-virtual-node assignment. This suite pins that on
fixed-seed random, clustered, and k-connected generator graphs —
mirroring the pinned-seed discipline of ``test_engine_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.core.cds_packing import (
    PackingParameters,
    construct_cds_packing,
    fractional_cds_packing,
)
from repro.core.cds_packing_reference import (
    construct_cds_packing_reference,
    fractional_cds_packing_reference,
)
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    gnp_connected,
    harary_graph,
    random_k_connected,
    random_regular_connected,
)

SEEDS = (0, 7, 41)

# name -> (builder, k_guess); spans the random / clustered / k-connected
# generator space of the paper's parameter regimes.
FAMILIES = [
    # fixed-seed random graphs
    ("gnp(26,0.3)", lambda: gnp_connected(26, 0.3, rng=5), 4),
    ("regular(6,30)", lambda: random_regular_connected(6, 30, rng=2), 6),
    # clustered topologies (cliques glued into chains / cycles)
    ("clique_chain(4,6)", lambda: clique_chain(4, 6), 4),
    ("fat_cycle(3,6)", lambda: fat_cycle(3, 6), 6),
    # k-connected generator graphs
    ("harary(5,24)", lambda: harary_graph(5, 24), 5),
    ("random_k_connected(24,4)", lambda: random_k_connected(24, 4, rng=11), 4),
]


def _canonical(result):
    """Everything observable about a construction, hashable-comparable."""
    return {
        "valid_classes": result.valid_classes,
        "t_requested": result.t_requested,
        "t_used": result.t_used,
        "attempts": result.attempts,
        "size": result.packing.size,
        "layer_history": result.layer_history,
        "trees": [
            (
                wt.class_id,
                wt.weight,
                frozenset(wt.tree.nodes()),
                frozenset(frozenset(e) for e in wt.tree.edges()),
            )
            for wt in result.packing.trees
        ],
    }


class TestConstructEquivalence:
    @pytest.mark.parametrize("name,builder,k", FAMILIES, ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_construction(self, name, builder, k, seed):
        graph = builder()
        kernel = construct_cds_packing(graph, k, rng=seed)
        reference = construct_cds_packing_reference(graph, k, rng=seed)
        assert _canonical(kernel) == _canonical(reference)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_virtual_assignment_identical(self, seed):
        """The full 3Ln-entry virtual-node assignment matches, not just
        the projected packing — the recursion's every decision is pinned."""
        graph = harary_graph(5, 24)
        kernel = construct_cds_packing(graph, 5, rng=seed)
        reference = construct_cds_packing_reference(graph, 5, rng=seed)
        assert (
            kernel.virtual_graph.assignment
            == reference.virtual_graph.assignment
        )

    def test_nondefault_parameters(self):
        """Parameter variations (more classes, fewer layers) stay pinned."""
        graph = harary_graph(6, 30)
        params = PackingParameters(class_factor=1.0, layer_factor=1)
        kernel = construct_cds_packing(graph, 6, params=params, rng=13)
        reference = construct_cds_packing_reference(
            graph, 6, params=params, rng=13
        )
        assert _canonical(kernel) == _canonical(reference)

    def test_retry_path_identical(self):
        """An over-large k_guess exercises the halving retry loop in both
        implementations identically (attempts > 1 or not, same either way)."""
        graph = clique_chain(3, 5)
        kernel = construct_cds_packing(graph, 12, rng=3)
        reference = construct_cds_packing_reference(graph, 12, rng=3)
        assert _canonical(kernel) == _canonical(reference)


class TestGuessLoopEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fractional_guessing_identical(self, seed):
        """The Remark 3.1 try-and-error loop (k unknown) consumes the RNG
        identically across guesses and returns the same accepted packing."""
        graph = harary_graph(4, 20)
        kernel = fractional_cds_packing(graph, rng=seed)
        reference = fractional_cds_packing_reference(graph, rng=seed)
        assert _canonical(kernel) == _canonical(reference)
        assert kernel.k_guess == reference.k_guess
