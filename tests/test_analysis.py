"""Sweep utilities (repro.analysis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import (
    SweepResult,
    TrialRecord,
    aggregate,
    loglog_slope,
    sweep,
)


def _toy_metric(n, rng=None):
    return {"value": float(n * n), "noise": float(rng or 0)}


class TestSweep:
    def test_grid_times_trials(self):
        grid = [{"n": 2}, {"n": 3}]
        result = sweep(_toy_metric, grid, trials=3, rng=1)
        assert len(result.records) == 6
        assert len(result.points()) == 2

    def test_values_recorded(self):
        result = sweep(_toy_metric, [{"n": 4}], trials=1, rng=2)
        record = result.records[0]
        assert record.param("n") == 4
        assert record.value("value") == 16.0

    def test_deterministic_under_seed(self):
        r1 = sweep(_toy_metric, [{"n": 2}], trials=2, rng=9)
        r2 = sweep(_toy_metric, [{"n": 2}], trials=2, rng=9)
        assert [t.seed for t in r1.records] == [t.seed for t in r2.records]

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            sweep(_toy_metric, [{"n": 2}], trials=0)

    def test_aggregate(self):
        result = sweep(_toy_metric, [{"n": 2}, {"n": 5}], trials=2, rng=3)
        rows = aggregate(result, "value")
        assert len(rows) == 2
        point, mean, lo, hi = rows[1]
        assert mean == lo == hi == 25.0


class TestLogLogSlope:
    def test_exact_power_law(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x**2 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_linear(self):
        xs = [10, 20, 40]
        ys = [5 * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [2])
        with pytest.raises(ValueError):
            loglog_slope([1, -1], [2, 3])
        with pytest.raises(ValueError):
            loglog_slope([2, 2], [3, 4])


@settings(max_examples=30, deadline=None)
@given(
    exponent=st.floats(0.25, 4.0),
    scale=st.floats(0.1, 100.0),
)
def test_slope_recovers_exponent_property(exponent, scale):
    xs = [2.0, 4.0, 8.0, 16.0]
    ys = [scale * x**exponent for x in xs]
    assert loglog_slope(xs, ys) == pytest.approx(exponent, rel=1e-6)


class TestSweepWithLibrary:
    def test_packing_sweep_end_to_end(self):
        """A realistic sweep: packing size across k on Harary graphs."""
        from repro.core.cds_packing import construct_cds_packing
        from repro.graphs.generators import harary_graph

        def run(k, rng=None):
            g = harary_graph(k, 20)
            result = construct_cds_packing(g, k, rng=rng)
            return {"size": result.size, "trees": len(result.packing)}

        result = sweep(run, [{"k": 3}, {"k": 5}], trials=2, rng=11)
        rows = aggregate(result, "size")
        assert all(mean > 0 for _, mean, _, _ in rows)
