"""The Appendix E tester: one-sided error, fault detection, round costs."""

import networkx as nx
import pytest

from repro.core.packing_tester import (
    cds_partition_test_centralized,
    distributed_cds_partition_test,
)
from repro.graphs.generators import harary_graph
from repro.simulator.network import Network


def _good_partition(graph, t=2):
    """Alternate nodes around the circulant: each class is a CDS for
    Harary graphs with k >= 2t."""
    return {v: v % t for v in graph.nodes()}


@pytest.fixture
def good_instance():
    g = harary_graph(6, 24)
    class_of = _good_partition(g, 2)
    # sanity: both halves of the circulant are CDSs
    rep = cds_partition_test_centralized(g, class_of, 2)
    assert rep.passed
    return g, class_of


class TestCentralized:
    def test_accepts_valid_partition(self, good_instance):
        g, class_of = good_instance
        rep = cds_partition_test_centralized(g, class_of, 2)
        assert rep.passed and rep.domination_ok and rep.connectivity_ok

    def test_detects_missing_class(self):
        g = harary_graph(4, 12)
        class_of = {v: 0 for v in g.nodes()}
        rep = cds_partition_test_centralized(g, class_of, 2)
        assert not rep.passed
        assert 1 in rep.failing_classes

    def test_detects_domination_failure(self):
        g = nx.path_graph(10)
        class_of = {v: (0 if v < 9 else 1) for v in g.nodes()}
        rep = cds_partition_test_centralized(g, class_of, 2)
        assert not rep.passed
        assert not rep.domination_ok

    def test_detects_disconnection(self):
        g = nx.cycle_graph(8)
        # class 1 = two antipodal nodes: dominating-ish? no—but surely
        # disconnected; class reported either way.
        class_of = {v: (1 if v in (0, 4) else 0) for v in g.nodes()}
        rep = cds_partition_test_centralized(g, class_of, 2)
        assert not rep.passed
        assert 1 in rep.failing_classes

    def test_rejects_wrong_domain(self):
        g = nx.cycle_graph(4)
        from repro.errors import GraphValidationError

        with pytest.raises(GraphValidationError):
            cds_partition_test_centralized(g, {0: 0}, 1)


class TestDistributed:
    def test_accepts_valid_partition(self, good_instance):
        g, class_of = good_instance
        net = Network(g, rng=51)
        rep = distributed_cds_partition_test(net, class_of, 2, rng=52)
        assert rep.passed
        assert rep.rounds > 0

    def test_one_sided_error_on_valid(self, good_instance):
        """A valid partition is never rejected, for any seed."""
        g, class_of = good_instance
        net = Network(g, rng=53)
        for seed in range(5):
            rep = distributed_cds_partition_test(net, class_of, 2, rng=seed)
            assert rep.passed

    def test_detects_disconnection_whp(self):
        """An injected split class is detected (E11's fault injection)."""
        g = harary_graph(6, 24)
        class_of = _good_partition(g, 2)
        # Move two antipodal nodes into a third, disconnected class.
        class_of[0] = 2
        class_of[12] = 2
        net = Network(g, rng=54)
        rep = distributed_cds_partition_test(net, class_of, 3, rng=55)
        assert not rep.passed

    def test_detects_domination_failure(self):
        g = nx.path_graph(12)
        class_of = {v: 0 for v in g.nodes()}
        class_of[0] = 1
        net = Network(g, rng=56)
        rep = distributed_cds_partition_test(net, class_of, 2, rng=57)
        assert not rep.passed
        assert not rep.domination_ok

    def test_agrees_with_centralized(self, good_instance):
        g, class_of = good_instance
        net = Network(g, rng=58)
        central = cds_partition_test_centralized(g, class_of, 2)
        dist = distributed_cds_partition_test(net, class_of, 2, rng=59)
        assert central.passed == dist.passed
