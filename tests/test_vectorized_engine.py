"""The columnar plane of the ``"vectorized"`` engine, unit by unit.

The differential matrix in ``test_engine_equivalence.py`` proves
byte-identity on the registered scenarios; this suite attacks the
columnar machinery directly — a hypothesis property that random traffic
(unicast/broadcast mixes, duplicate sends, empty rounds, mutable
payloads) delivers in the indexed loop's exact order and contents, the
payload-interning table's round-trip and type-awareness, the inbox
views' Mapping surface, plane caching across runs, the clique shape,
and the numpy-absent error path. The sharded 1-worker fast path rides
along: it delegates to these inner loops.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelViolationError, SimulationError
from repro.graphs.generators import harary_graph
from repro.simulator.message import Message, payload_bits
from repro.simulator.network import Network
from repro.simulator.node import NodeProgram
from repro.simulator.runner import Model, SyncRunner, simulate
from repro.simulator.tracing import Tracer
from vectorized_support import VECTORIZED_SKIP_REASON, VECTORIZED_TESTS_OK

pytestmark = pytest.mark.skipif(
    not VECTORIZED_TESTS_OK, reason=VECTORIZED_SKIP_REASON
)

np = pytest.importorskip("numpy")

from repro.simulator import runner_vectorized as rv  # noqa: E402
from repro.simulator.runner_vectorized import (  # noqa: E402
    PayloadInterner,
    _ArrayInbox,
    _ColumnInbox,
)


# ----------------------------------------------------------------------
# Random traffic: vectorized delivery == indexed delivery, bytewise
# ----------------------------------------------------------------------


class ScheduledTrafficProgram(NodeProgram):
    """Replays a pre-drawn per-round action list and logs every inbox.

    Actions: ``None`` (idle round), ``("b", payload)`` broadcast, or
    ``("u", {neighbor_pos: payload})`` addressed sends. The log captures
    the inbox in *insertion order* — the strongest observable claim
    about delivery the engine contract makes.
    """

    def __init__(self, vid, schedule, log, unicast_ok=True):
        self._vid = vid
        self._schedule = schedule
        self._log = log
        self._unicast_ok = unicast_ok

    def _action(self, ctx, index):
        if index >= len(self._schedule):
            return None
        action = self._schedule[index]
        if action is None:
            return None
        kind, value = action
        if kind == "b":
            return value
        if not self._unicast_ok:  # V-CONGEST: degrade to a broadcast
            for payload in value.values():
                return payload
            return None
        sends = {
            ctx.neighbors[pos % len(ctx.neighbors)]: payload
            for pos, payload in value.items()
        }
        return sends or None

    def on_start(self, ctx):
        return self._action(ctx, 0)

    def on_round(self, ctx, inbox):
        self._log.append(
            (
                ctx.round,
                self._vid,
                [
                    (label, message.sender, message.payload, message.bits)
                    for label, message in inbox.items()
                ],
            )
        )
        if ctx.round > len(self._schedule):
            ctx.halt(output=("done", self._vid))
            return None
        return self._action(ctx, ctx.round)


_payloads = st.one_of(
    st.integers(min_value=-40, max_value=40),
    st.booleans(),
    st.text(max_size=3),
    st.tuples(st.integers(min_value=0, max_value=9), st.booleans()),
    # Mutable payloads exercise the uninterned path.
    st.lists(st.integers(min_value=0, max_value=5), max_size=2),
)

_actions = st.one_of(
    st.none(),
    st.tuples(st.just("b"), _payloads),
    st.tuples(
        st.just("u"),
        st.dictionaries(
            st.integers(min_value=0, max_value=5), _payloads, max_size=3
        ),
    ),
)

_schedules = st.lists(
    st.lists(_actions, min_size=1, max_size=4), min_size=4, max_size=9
)


def _run_traffic(engine, graph, schedules, model):
    network = Network(graph, rng=7)
    log = []
    result = simulate(
        network,
        lambda v: ScheduledTrafficProgram(
            v,
            schedules[v % len(schedules)],
            log,
            unicast_ok=model is not Model.V_CONGEST,
        ),
        model=model,
        rng=5,
        engine=engine,
        max_rounds=50,
    )
    metrics = result.metrics
    return {
        "outputs": list(result.outputs.items()),
        "halted": result.halted,
        "log": log,
        "metrics": (
            metrics.rounds,
            metrics.messages,
            metrics.bits,
            metrics.max_message_bits,
        ),
    }


class TestRandomTrafficProperty:
    @settings(max_examples=40, deadline=None)
    @given(schedules=_schedules, data=st.data())
    def test_delivery_order_and_contents_match_indexed(
        self, schedules, data
    ):
        n = len(schedules)
        graph = nx.cycle_graph(n)
        # A few chords make fan-outs uneven without disconnecting.
        for hop in (2, 3):
            if n > 2 * hop:
                graph.add_edge(0, hop)
        model = data.draw(
            st.sampled_from([Model.V_CONGEST, Model.E_CONGEST])
        )
        baseline = _run_traffic("indexed", graph, schedules, model)
        other = _run_traffic("vectorized", graph, schedules, model)
        assert other == baseline

    def test_duplicate_and_empty_rounds(self):
        # Same payload re-broadcast (warm send cache), idle gaps, and a
        # payload shared by many senders — deterministic anchor case.
        schedules = [
            [("b", 7), None, ("b", 7), ("b", 7)],
            [None, ("b", 7), None, ("b", (1, True))],
            [("b", "x"), ("b", "x"), ("u", {0: 7}), None],
            [None, None, None, None],
        ]
        graph = nx.cycle_graph(8)
        baseline = _run_traffic("indexed", graph, schedules, Model.E_CONGEST)
        other = _run_traffic("vectorized", graph, schedules, Model.E_CONGEST)
        assert other == baseline


class TestMutablePayloadSemantics:
    def test_mutated_list_payload_stays_live_shared(self):
        """The indexed loop hands every receiver the *same live object*
        a sender broadcast — a source that mutates its list before the
        receiver's ``on_round`` fires is observed mutated (nodes execute
        in index order). The columnar engine must not copy or intern its
        way out of that aliasing: the uninterned path forwards the
        object itself."""

        class Mutator(NodeProgram):
            def __init__(self, is_source, seen):
                self._is_source = is_source
                self._payload = [0]
                self._seen = seen

            def on_start(self, ctx):
                return self._payload if self._is_source else None

            def on_round(self, ctx, inbox):
                for message in inbox.values():
                    self._seen.append((ctx.round, tuple(message.payload)))
                if ctx.round >= 3:
                    ctx.halt()
                    return None
                if self._is_source:
                    self._payload[0] += 10  # mutate the already-sent list
                    return self._payload
                return None

        def run(engine):
            network = Network(nx.path_graph(3), rng=2)
            seen = []
            simulate(
                network,
                lambda v: Mutator(v == 0, seen),
                rng=4,
                engine=engine,
                max_rounds=20,
            )
            return seen

        indexed = run("indexed")
        vectorized = run("vectorized")
        assert vectorized == indexed
        # Node 0 runs first each round, so by the time node 1 reads its
        # inbox the list already says 10 (then 20): live aliasing, kept.
        assert (1, (10,)) in vectorized
        assert (2, (20,)) in vectorized


# ----------------------------------------------------------------------
# The interning table
# ----------------------------------------------------------------------


class TestPayloadInterner:
    def test_round_trip_and_stable_ids(self):
        interner = PayloadInterner()
        payloads = [0, 1, -3, "x", (1, 2), frozenset({3}), None, True, 1.5]
        ids = {}
        for payload in payloads:
            pid, bits = interner.intern(payload)
            assert bits == payload_bits(payload)
            assert interner.payload_of(pid) == payload
            ids[pid] = payload
        assert len(ids) == len(payloads)  # all distinct
        for payload in payloads:  # re-interning is stable
            pid, _ = interner.intern(payload)
            assert interner.payload_of(pid) == payload
        assert len(interner) == len(payloads)

    def test_type_aware_keys(self):
        """``1 == True == 1.0`` in Python, but their encodings differ —
        the table must keep them (and nested variants) apart."""
        interner = PayloadInterner()
        distinct = [1, True, 1.0, (1,), (True,), ((1,),), ((True,),),
                    frozenset({1}), frozenset({True})]
        pids = [interner.intern(payload)[0] for payload in distinct]
        assert len(set(pids)) == len(distinct)
        for payload, pid in zip(distinct, pids):
            canonical = interner.payload_of(pid)
            assert canonical == payload
            assert type(canonical) is type(payload)

    def test_unhashable_payloads_raise_typeerror(self):
        interner = PayloadInterner()
        for payload in ([1, 2], ([1],), (1, [2]), ((1, [2]),)):
            with pytest.raises(TypeError):
                interner.intern(payload)
        assert len(interner) == 0  # nothing half-registered

    def test_cap_clears_wholesale(self, monkeypatch):
        monkeypatch.setattr(rv, "MAX_INTERNED_PAYLOADS", 4)
        interner = PayloadInterner()
        for i in range(4):
            interner.intern(i)
        assert len(interner) == 4
        pid, _ = interner.intern(99)  # crosses the cap: table restarts
        assert pid == 0
        assert len(interner) == 1
        assert interner.payload_of(0) == 99

    def test_generation_counts_clears(self, monkeypatch):
        """``generation`` is the sharded barrier's reset signal: a
        destination shard drops its mirrored payload table exactly when
        the source's counter moved, so the counter must tick on every
        clear — explicit or cap-triggered — and never otherwise."""
        monkeypatch.setattr(rv, "MAX_INTERNED_PAYLOADS", 2)
        interner = PayloadInterner()
        assert interner.generation == 0
        interner.intern("a")
        interner.intern("b")
        assert interner.generation == 0  # filling the table is not a reset
        interner.intern("c")  # cap crossed: wholesale clear
        assert interner.generation == 1
        interner.clear()
        assert interner.generation == 2


class TestBuildInCsr:
    """The module-level ``build_in_csr`` must slice consistently: a
    shard's ``[lo, hi)`` window is exactly the full CSR restricted to
    receivers in the window, with destinations relocalized."""

    def _fanout(self, graph):
        network = Network(graph, rng=1)
        transport = SyncRunner(network, model=Model.V_CONGEST).transport
        return transport._fanout, network.n

    def test_slices_tile_the_full_csr(self):
        fanout, n = self._fanout(harary_graph(4, 13))
        full_ptr, full_src, full_dst = rv.build_in_csr(fanout, n)
        for lo, hi in ((0, 5), (5, 9), (9, 13), (0, n)):
            ptr, src, dst = rv.build_in_csr(fanout, n, lo, hi)
            assert len(ptr) == hi - lo + 1
            for r in range(lo, hi):
                window = slice(ptr[r - lo], ptr[r - lo + 1])
                # Same senders, in the same (ascending) order…
                assert list(src[window]) == list(
                    full_src[full_ptr[r]:full_ptr[r + 1]]
                )
                # …and every local destination maps back to r.
                assert all(d == r - lo for d in dst[window])

    def test_sender_indices_stay_global(self):
        fanout, n = self._fanout(nx.cycle_graph(6))
        _, src, _ = rv.build_in_csr(fanout, n, 3, 6)
        # Receivers 3..5 hear from global neighbors 2..5 ∪ {0}.
        assert set(src.tolist()) == {2, 3, 4, 5, 0}


# ----------------------------------------------------------------------
# Inbox views
# ----------------------------------------------------------------------


class TestInboxViews:
    def _column(self):
        labels = ["a", "b", "c", "d"]
        msgs = [Message(label, ord(label), 8) for label in labels]
        box = _ColumnInbox(labels, msgs)
        box._lo, box._hi = 1, 4
        return box, labels, msgs

    def test_column_inbox_is_a_mapping(self):
        from collections.abc import Mapping

        box, labels, msgs = self._column()
        assert isinstance(box, Mapping)
        assert len(box) == 3 and box
        assert list(box) == box.keys() == ["b", "c", "d"]
        assert box.values() == msgs[1:4]
        assert box.items() == list(zip(labels[1:], msgs[1:]))
        assert box["c"] == msgs[2]
        assert box.get("a") is None and "a" not in box
        assert "b" in box
        assert box == dict(zip(labels[1:], msgs[1:]))
        with pytest.raises(KeyError):
            box["zz"]

    def test_column_inbox_self_skip(self):
        box, labels, msgs = self._column()
        box._lo, box._hi, box._skip = 0, 4, 2  # clique view of node "c"
        assert len(box) == 3
        assert box.keys() == ["a", "b", "d"]
        assert box.values() == [msgs[0], msgs[1], msgs[3]]
        assert "c" not in box

    def test_array_inbox_matches_column_semantics(self):
        from collections.abc import Mapping

        labels_np = np.empty(4, dtype=object)
        labels = ["a", "b", "c", "d"]
        for j, label in enumerate(labels):
            labels_np[j] = label
        msgs = [Message(label, ord(label), 8) for label in labels]
        arr = np.empty(3, dtype=object)
        for j, m in enumerate(msgs[1:4]):
            arr[j] = m
        state = [arr, np.asarray([1, 2, 3])]
        box = _ArrayInbox(state, labels_np)
        box._lo, box._hi = 0, 3
        assert isinstance(box, Mapping)
        assert len(box) == 3 and box
        assert box.keys() == ["b", "c", "d"]
        assert box.values() == msgs[1:4]
        assert box["d"] == msgs[3]
        assert box.get("zz", 0) == 0 and "zz" not in box
        assert box == dict(zip(labels[1:], msgs[1:]))
        column = _ColumnInbox(labels, msgs)
        column._lo, column._hi = 1, 4
        assert box == column and column == box


# ----------------------------------------------------------------------
# Plane caching, the clique shape, and the numpy-absent error
# ----------------------------------------------------------------------


class TestPlaneAndEngineEdges:
    def _flood_factory(self, network):
        from repro.simulator.algorithms.flooding import ExtremumFloodProgram

        return lambda v: ExtremumFloodProgram(network.node_id(v))

    def test_plane_cached_across_runs(self):
        network = Network(harary_graph(4, 12), rng=3)
        factory = self._flood_factory(network)
        first = SyncRunner(network, rng=5, engine="vectorized").run(factory)
        planes = network._repro_vector_planes
        assert len(planes) == 1
        plane = next(iter(planes.values()))
        interned_after_first = len(plane.interner)
        assert interned_after_first > 0
        second = SyncRunner(network, rng=5, engine="vectorized").run(factory)
        assert network._repro_vector_planes is planes
        assert next(iter(planes.values())) is plane  # reused, not rebuilt
        # Warm run re-interns nothing new — same payload population.
        assert len(plane.interner) == interned_after_first
        assert first.outputs == second.outputs

    def test_clique_transport_matches_indexed(self):
        network = Network(harary_graph(4, 10), rng=3)
        factory = self._flood_factory(network)
        results = {}
        traces = {}
        for engine in ("indexed", "vectorized"):
            tracer = Tracer()
            results[engine] = simulate(
                network,
                tracer.wrap(factory),
                model=Model.CONGESTED_CLIQUE,
                rng=5,
                engine=engine,
            )
            traces[engine] = [repr(e) for e in tracer.trace.events]
        assert results["vectorized"].outputs == results["indexed"].outputs
        assert traces["vectorized"] == traces["indexed"]
        a, b = results["vectorized"].metrics, results["indexed"].metrics
        assert (a.rounds, a.messages, a.bits) == (b.rounds, b.messages, b.bits)

    def test_missing_numpy_raises_clean_error(self, monkeypatch):
        monkeypatch.setattr(rv, "np", None)
        assert not rv.numpy_available()
        network = Network(nx.path_graph(4), rng=1)
        with pytest.raises(SimulationError, match="requires numpy"):
            simulate(
                network,
                self._flood_factory(network),
                rng=2,
                engine="vectorized",
            )


class TestWarmSendCacheBudget:
    """The warm-send cache must never outlive the budget it validated
    against: runs over the same Network with a different
    ``bits_per_message`` re-validate every send, exactly like the
    indexed loop."""

    class _OneShotBroadcast(NodeProgram):
        def __init__(self, payload):
            self._payload = payload

        def on_start(self, ctx):
            # Send from on_round only, so the payload travels through
            # the warm-send cache path (on_start validates directly).
            return None

        def on_round(self, ctx, inbox):
            if ctx.round == 1:
                return self._payload
            ctx.halt(output=len(inbox))
            return None

    def test_budget_change_revalidates_cached_sends(self):
        network = Network(nx.cycle_graph(6), rng=1)
        payload = (900, 901)  # well under 1000 bits, well over 8
        factory = lambda v: self._OneShotBroadcast(payload)  # noqa: E731
        generous = simulate(
            network, factory, rng=2, engine="vectorized",
            bits_per_message=1000,
        )
        assert generous.halted
        plane = next(iter(network._repro_vector_planes.values()))
        assert plane.send_cache  # the generous run primed the cache
        with pytest.raises(ModelViolationError) as vec_err:
            simulate(
                network, factory, rng=2, engine="vectorized",
                bits_per_message=8,
            )
        with pytest.raises(ModelViolationError) as idx_err:
            simulate(
                network, factory, rng=2, engine="indexed",
                bits_per_message=8,
            )
        assert str(vec_err.value) == str(idx_err.value)
        assert plane.cache_budget == 8

    def test_same_budget_reuses_cache(self):
        network = Network(nx.cycle_graph(6), rng=1)
        factory = lambda v: self._OneShotBroadcast((3, 4))  # noqa: E731
        simulate(network, factory, rng=2, engine="vectorized")
        plane = next(iter(network._repro_vector_planes.values()))
        cached = dict(plane.send_cache)
        assert cached
        simulate(network, factory, rng=2, engine="vectorized")
        assert plane.send_cache == cached  # warm run, nothing re-keyed


class TestDictSubclassDispatch:
    def test_dict_subclass_routes_as_addressed_traffic(self):
        """``Transport.validate`` dispatches addressed traffic with
        ``isinstance``, so an OrderedDict return must be addressed
        traffic on every engine — not an interning-path error."""
        from collections import OrderedDict

        def run(engine):
            network = Network(nx.cycle_graph(5), rng=3)
            log = []

            class Addressor(NodeProgram):
                def __init__(self, vid):
                    self._vid = vid

                def on_start(self, ctx):
                    return None

                def on_round(self, ctx, inbox):
                    log.append(
                        (
                            ctx.round,
                            self._vid,
                            [(k, m.payload) for k, m in inbox.items()],
                        )
                    )
                    if ctx.round == 1:
                        return OrderedDict(
                            (nbr, (self._vid, pos))
                            for pos, nbr in enumerate(ctx.neighbors)
                        )
                    ctx.halt(output=self._vid)
                    return None

            result = simulate(
                network,
                lambda v: Addressor(v),
                model=Model.E_CONGEST,
                rng=4,
                engine=engine,
                max_rounds=10,
            )
            return log, list(result.outputs.items()), result.halted

        assert run("vectorized") == run("indexed")


class TestShardedSingleWorkerFastPath:
    """shards=1 must not fork: it delegates to the in-process inner
    loop (vectorized when numpy imports, indexed otherwise), so it works
    — and stays bit-identical — even where fork is unavailable."""

    def _run(self, engine, shards=None):
        network = Network(harary_graph(4, 12), rng=3)
        factory = self._factory(network)
        tracer = Tracer()
        result = SyncRunner(
            network, rng=5, engine=engine, shards=shards
        ).run(tracer.wrap(factory))
        return result, [repr(e) for e in tracer.trace.events]

    def _factory(self, network):
        from repro.simulator.algorithms.flooding import ExtremumFloodProgram

        return lambda v: ExtremumFloodProgram(network.node_id(v))

    def test_single_shard_matches_indexed(self):
        base, base_trace = self._run("indexed")
        one, one_trace = self._run("sharded", shards=1)
        assert one.outputs == base.outputs
        assert list(one.outputs) == list(base.outputs)
        assert one_trace == base_trace
        a, b = one.metrics, base.metrics
        assert (a.rounds, a.messages, a.bits) == (b.rounds, b.messages, b.bits)

    def test_single_shard_runs_without_fork(self, monkeypatch):
        from repro.simulator import runner_sharded

        monkeypatch.setattr(runner_sharded, "fork_available", lambda: False)
        base, _ = self._run("indexed")
        one, _ = self._run("sharded", shards=1)
        assert one.outputs == base.outputs

    def test_single_shard_without_numpy_uses_indexed(self, monkeypatch):
        monkeypatch.setattr(rv, "np", None)
        base, _ = self._run("indexed")
        one, _ = self._run("sharded", shards=1)
        assert one.outputs == base.outputs
