"""Integral tree packings (Section 1.2): vertex-disjoint CDSs and
edge-disjoint spanning trees."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.integral_packing import (
    integral_cds_packing,
    integral_spanning_packing,
)
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import fat_cycle, harary_graph, random_regular_connected


class TestIntegralCds:
    def test_packing_vertex_disjoint_and_valid(self):
        g = harary_graph(8, 30)
        result = integral_cds_packing(g, rng=91)
        result.packing.verify()
        assert result.packing.is_vertex_disjoint()
        assert all(t.weight == 1.0 for t in result.packing)

    def test_trees_dominate(self):
        g = fat_cycle(4, 5)  # k = 8
        result = integral_cds_packing(g, rng=92)
        result.packing.verify()
        assert result.size >= 1

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            integral_cds_packing(g)

    def test_low_connectivity_still_returns_one(self):
        g = nx.cycle_graph(12)
        result = integral_cds_packing(g, rng=93)
        assert result.size >= 1


class TestIntegralSpanning:
    def test_edge_disjoint_spanning_trees(self):
        g = harary_graph(10, 24)
        packing = integral_spanning_packing(g, rng=94)
        packing.verify()
        assert packing.is_edge_disjoint()
        assert all(t.weight == 1.0 for t in packing)

    def test_size_positive_for_high_lambda(self):
        g = random_regular_connected(10, 24, rng=95)
        packing = integral_spanning_packing(g, rng=96)
        assert len(packing) >= 1

    def test_size_bounded_by_tutte(self):
        """At most ⌊λ/...⌋ — certainly <= λ edge-disjoint spanning trees."""
        g = harary_graph(6, 18)
        packing = integral_spanning_packing(g, rng=97)
        assert len(packing) <= edge_connectivity(g)

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            integral_spanning_packing(g)
