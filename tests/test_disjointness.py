"""Appendix G.2: the two-party simulation and the reduction loop."""

import pytest

from repro.errors import ProtocolError
from repro.lowerbounds.construction import build_g_xy
from repro.lowerbounds.disjointness import (
    decide_disjointness_via_connectivity,
    simulate_protocol_two_party,
)


@pytest.fixture(scope="module")
def instance():
    return build_g_xy(h=3, ell=3, w=5, x_set={1, 2}, y_set={2})


def _counter_protocol(node, rnd, inbox):
    """Every node broadcasts the number of messages it heard last round."""
    return ("c", len(inbox))


def _silent_protocol(node, rnd, inbox):
    return None


class TestTwoPartySimulation:
    def test_bits_within_2bt(self, instance):
        sim = simulate_protocol_two_party(instance, _counter_protocol, rounds=3)
        assert sim.within_budget
        assert sim.bits_exchanged <= sim.bit_budget

    def test_silent_protocol_minimal_bits(self, instance):
        sim = simulate_protocol_two_party(instance, _silent_protocol, rounds=2)
        # A silent a/b still costs 1 accounting bit per round each.
        assert sim.bits_exchanged == 4

    def test_rounds_beyond_ell_rejected(self, instance):
        with pytest.raises(ProtocolError):
            simulate_protocol_two_party(
                instance, _counter_protocol, rounds=instance.ell + 1
            )

    def test_replay_matches_ground_truth(self, instance):
        """The consistency check inside the simulator (Lemma G.6's
        induction) must hold — it raises on divergence."""
        simulate_protocol_two_party(instance, _counter_protocol, rounds=2)

    def test_bits_scale_linearly_with_rounds(self, instance):
        s1 = simulate_protocol_two_party(instance, _counter_protocol, rounds=1)
        s3 = simulate_protocol_two_party(instance, _counter_protocol, rounds=3)
        assert s3.bits_exchanged >= 2 * s1.bits_exchanged


class TestReduction:
    def test_decides_intersecting(self):
        inst = build_g_xy(h=4, ell=2, w=6, x_set={1, 4}, y_set={2, 4})
        assert decide_disjointness_via_connectivity(inst) is False

    def test_decides_disjoint(self):
        inst = build_g_xy(h=4, ell=2, w=6, x_set={1, 3}, y_set={2, 4})
        assert decide_disjointness_via_connectivity(inst) is True

    def test_grid_of_instances(self):
        """The reduction decides every promise instance on a small grid."""
        import itertools

        h = 3
        subsets = [
            frozenset(c)
            for r in range(h + 1)
            for c in itertools.combinations(range(1, h + 1), r)
        ]
        for x_set, y_set in itertools.product(subsets, subsets):
            if len(x_set & y_set) > 1:
                continue
            inst = build_g_xy(h=h, ell=1, w=6, x_set=x_set, y_set=y_set)
            verdict = decide_disjointness_via_connectivity(inst)
            assert verdict == (not (x_set & y_set))
