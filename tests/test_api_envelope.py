"""Result envelopes: every task's envelope survives a JSON round trip.

``Result.from_json(r.to_json()) == r`` must hold exactly — including
payloads carrying ``Fraction``, ``frozenset``, ``set``, ``tuple``, and
dicts with non-string keys, which the envelope codec tags rather than
flattens.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.api import GraphSession
from repro.api.envelope import Result, decode_value, encode_value
from repro.errors import GraphValidationError

SPEC = "harary:4,12"


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            0,
            -7,
            3.5,
            "text",
            Fraction(22, 7),
            frozenset({1, 2, 3}),
            {1, 2, 3},
            (1, "two", 3.0),
            [1, [2, [3]]],
            {"plain": {"nested": [1, 2]}},
            {(1, 2): "tuple-key", 3: "int-key"},
            frozenset({frozenset({1, 2}), frozenset({3})}),
            {"mix": (Fraction(1, 3), frozenset({(1, 2)}))},
        ],
    )
    def test_round_trip(self, value):
        encoded = encode_value(value)
        json.dumps(encoded)  # must be pure JSON
        decoded = decode_value(encoded)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_set_encoding_is_deterministic(self):
        a = encode_value(frozenset({5, 1, 9, 3}))
        b = encode_value(frozenset({9, 3, 5, 1}))
        assert json.dumps(a) == json.dumps(b)

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_value(object())

    def test_fraction_is_exact(self):
        fraction = Fraction(10**30 + 1, 10**30)
        assert decode_value(encode_value(fraction)) == fraction


def _round_trips(envelope: Result) -> None:
    restored = Result.from_json(envelope.to_json())
    assert restored == envelope  # `raw` is excluded from equality
    assert restored.payload == envelope.payload
    assert restored.params == envelope.params
    assert restored.timings == envelope.timings
    # canonical (timing-free) form parses and matches on content
    canonical = json.loads(envelope.canonical_json())
    assert canonical["payload"] == json.loads(envelope.to_json())["payload"]
    assert "timings" not in canonical


class TestEveryTaskEnvelope:
    @pytest.fixture(scope="class")
    def session(self):
        return GraphSession(SPEC)

    def test_connectivity(self, session):
        _round_trips(session.connectivity(seed=3))

    def test_connectivity_exact(self, session):
        _round_trips(session.connectivity(seed=3, exact=True))

    def test_pack_cds(self, session):
        _round_trips(session.pack_cds(seed=3))

    def test_pack_spanning(self, session):
        _round_trips(session.pack_spanning(seed=3))

    def test_pack_integral_cds(self):
        _round_trips(
            GraphSession("fat_cycle:4,4").pack_integral(
                kind="cds", class_factor=2.0, seed=17
            )
        )

    def test_pack_integral_spanning(self, session):
        _round_trips(session.pack_integral(kind="spanning", seed=3))

    def test_broadcast(self, session):
        _round_trips(session.broadcast(messages=6, seed=3))

    def test_gossip(self, session):
        _round_trips(session.gossip(seed=3))

    def test_simulate(self, session):
        _round_trips(session.simulate(program="flood-min", seed=3))

    def test_pack_cds_distributed(self):
        _round_trips(
            GraphSession("harary:4,10").pack_cds_distributed(4, seed=3)
        )

    def test_synthetic_payload_with_exotic_types(self, session):
        envelope = session.pack_cds(seed=3)
        exotic = Result(
            task=envelope.task,
            graph=envelope.graph,
            fingerprint=envelope.fingerprint,
            n=envelope.n,
            m=envelope.m,
            seed=envelope.seed,
            params=dict(envelope.params),
            payload={
                **envelope.payload,
                "weights_exact": (Fraction(1, 3), Fraction(2, 3)),
                "tree_nodes": frozenset({0, 1, 2}),
                "per_node": {0: Fraction(1, 2), (1, 2): "pair"},
            },
        )
        _round_trips(exotic)

    def test_missing_field_raises(self):
        with pytest.raises(GraphValidationError, match="missing"):
            Result.from_dict({"task": "pack_cds"})
