"""Shared fixtures: deterministic small graphs spanning the k/λ/D space."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    random_regular_connected,
    torus_grid,
)


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def harary_4_20():
    """Harary H(4, 20): k = λ = 4."""
    return harary_graph(4, 20)


@pytest.fixture
def harary_6_30():
    """Harary H(6, 30): k = λ = 6."""
    return harary_graph(6, 30)


@pytest.fixture
def chain_graph():
    """Clique chain: k = 4, diameter 4 (the large-diameter regime)."""
    return clique_chain(4, 5)


@pytest.fixture
def fat_cycle_graph():
    """Fat cycle: width 3, so k = 6; diameter 3."""
    return fat_cycle(3, 6)


@pytest.fixture
def cube():
    """4-dimensional hypercube: n = 16, k = λ = 4."""
    return hypercube(4)


@pytest.fixture
def torus():
    """5x5 torus: 4-regular, k = λ = 4."""
    return torus_grid(5, 5)


@pytest.fixture
def regular_graph():
    """Random 6-regular graph on 24 nodes (expander-ish)."""
    return random_regular_connected(6, 24, rng=7)


@pytest.fixture(
    params=["harary", "chain", "fat_cycle", "cube", "torus"],
)
def family_graph(request):
    """Parametrized sweep over the main graph families."""
    builders = {
        "harary": lambda: harary_graph(4, 20),
        "chain": lambda: clique_chain(4, 5),
        "fat_cycle": lambda: fat_cycle(3, 6),
        "cube": lambda: hypercube(4),
        "torus": lambda: torus_grid(5, 5),
    }
    return builders[request.param]()
