"""Section 2 preprocessing and the Luby MIS substrate ([3], [39])."""

import networkx as nx
import pytest

from repro.graphs.generators import clique_chain, harary_graph
from repro.simulator.algorithms.luby_mis import (
    is_maximal_independent_set,
    luby_mis,
)
from repro.simulator.algorithms.preprocessing import network_preprocessing
from repro.simulator.network import Network


class TestPreprocessing:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: harary_graph(4, 18),
            lambda: clique_chain(3, 6),
            lambda: nx.cycle_graph(11),
        ],
    )
    def test_count_and_diameter_bracket(self, builder):
        g = builder()
        net = Network(g, rng=61)
        pre = network_preprocessing(net)
        assert pre.n == g.number_of_nodes()
        assert pre.diameter_estimate_valid(nx.diameter(g))

    def test_rounds_linear_in_diameter(self):
        g = clique_chain(3, 10)  # diameter 9
        net = Network(g, rng=62)
        pre = network_preprocessing(net)
        d = nx.diameter(g)
        assert pre.metrics.rounds <= 8 * d + 20

    def test_leader_agreed(self):
        g = harary_graph(4, 12)
        net = Network(g, rng=63)
        pre = network_preprocessing(net)
        assert pre.leader in net.nodes
        assert pre.bfs.root == pre.leader

    def test_phase_breakdown(self):
        g = nx.cycle_graph(9)
        net = Network(g, rng=64)
        pre = network_preprocessing(net)
        assert set(pre.metrics.phase_rounds) == {
            "leader-election",
            "bfs",
            "count-convergecast",
        }


class TestLubyMis:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_mis_valid_on_cycle(self, seed):
        g = nx.cycle_graph(12)
        net = Network(g, rng=seed)
        mis, _ = luby_mis(net)
        assert is_maximal_independent_set(g, mis)

    def test_mis_valid_on_dense(self):
        g = harary_graph(6, 20)
        net = Network(g, rng=5)
        mis, _ = luby_mis(net)
        assert is_maximal_independent_set(g, mis)

    def test_complete_graph_singleton(self):
        g = nx.complete_graph(8)
        net = Network(g, rng=6)
        mis, _ = luby_mis(net)
        assert len(mis) == 1

    def test_rounds_logarithmic_shape(self):
        g = nx.cycle_graph(40)
        net = Network(g, rng=7)
        mis, result = luby_mis(net)
        assert is_maximal_independent_set(g, mis)
        # 2 rounds per phase, O(log n) phases w.h.p.; generous cap.
        assert result.metrics.rounds <= 20 * (40).bit_length()

    def test_checker_rejects_dependent_set(self):
        g = nx.path_graph(4)
        assert not is_maximal_independent_set(g, {0, 1})

    def test_checker_rejects_non_maximal(self):
        g = nx.path_graph(5)
        assert not is_maximal_independent_set(g, {0})
