"""Utility helpers: rng plumbing, math helpers, error hierarchy."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import (
    GraphValidationError,
    ModelViolationError,
    PackingConstructionError,
    PackingValidationError,
    ReproError,
    SimulationError,
)
from repro.utils.mathutil import ceil_div, ceil_log2, ilog2, int_log, whp_repeats
from repro.utils.rng import ensure_rng, fresh_seed, spawn_rngs


class TestRngPlumbing:
    def test_none_gives_fresh(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_instance_passthrough(self):
        r = random.Random(1)
        assert ensure_rng(r) is r

    def test_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            ensure_rng(True)
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent(self):
        children = spawn_rngs(5, 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_fresh_seed_in_range(self):
        seed = fresh_seed(random.Random(2))
        assert 0 <= seed < 2**63


class TestMathHelpers:
    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(8, 2) == 4
        assert ceil_div(0, 3) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(8) == 3
        assert ilog2(9) == 3
        with pytest.raises(ValueError):
            ilog2(0)

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(8) == 3
        assert ceil_log2(9) == 4

    def test_int_log_clamps(self):
        assert int_log(0) == math.log(2)
        assert int_log(100) == pytest.approx(math.log(100))

    def test_whp_repeats_grows(self):
        assert whp_repeats(2) >= 1
        assert whp_repeats(10**6) > whp_repeats(10)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            GraphValidationError,
            PackingValidationError,
            PackingConstructionError,
            SimulationError,
            ModelViolationError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(ModelViolationError, SimulationError)

    def test_package_exports(self):
        assert repro.__version__
        assert repro.ReproError is ReproError


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 2**40))
def test_log_identities_property(n):
    assert 2 ** ilog2(n) <= n < 2 ** (ilog2(n) + 1)
    assert 2 ** ceil_log2(n) >= n
