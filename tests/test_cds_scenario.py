"""The registered ``cds_packing`` scenario program: differential checks.

Satellite of the CDS kernel PR: the Appendix B distributed construction
is runnable through the PR-2 scenario layer (``repro simulate``) on both
the V-CONGEST and Congested-Clique transports. This suite pins:

* **transport differential** — same seed, same packing/outputs on both
  transports (decisions are graph-local by construction); the clique
  only inflates delivery accounting;
* **distributed vs centralized** — the scenario outputs agree with a
  direct :func:`distributed_cds_packing` run and every class they name
  passes the *centralized* networkx CDS oracle;
* **trace determinism** — two traced runs of the same seed produce the
  identical transcript, event for event.
"""

from __future__ import annotations

import pytest

from repro.core.cds_packing_distributed import distributed_cds_packing
from repro.errors import GraphValidationError
from repro.graphs.connectivity import is_connected_dominating_set
from repro.graphs.generators import harary_graph
from repro.simulator.faults import FaultPlan
from repro.simulator.network import Network
from repro.simulator.runner import Model
from repro.simulator.scenario import Scenario, resolve_program
from repro.utils.rng import ensure_rng

GRAPH_SPEC = "harary:4,16"
SEED = 5


def _scenario(model=None, trace=False, seed=SEED) -> Scenario:
    return Scenario(
        topology=GRAPH_SPEC,
        program="cds_packing",
        model=model,
        seed=seed,
        trace=trace,
    )


@pytest.fixture(scope="module")
def vcongest_run():
    return _scenario(trace=True).run()


@pytest.fixture(scope="module")
def clique_run():
    return _scenario(model=Model.CONGESTED_CLIQUE, trace=True).run()


class TestRegistration:
    def test_program_registered(self):
        program = resolve_program("cds_packing")
        assert program.driver is not None
        assert program.build is None
        assert program.model is Model.V_CONGEST

    def test_fault_plan_rejected(self):
        scenario = _scenario().with_overrides(
            fault_plan=FaultPlan(drop_probability=0.1)
        )
        with pytest.raises(GraphValidationError):
            scenario.run()


class TestTransportDifferential:
    def test_same_packing_on_both_transports(self, vcongest_run, clique_run):
        """Graph-local decisions: the clique transport changes delivery
        fan-out, never the constructed packing."""
        assert vcongest_run.result.outputs == clique_run.result.outputs
        assert vcongest_run.rounds == clique_run.rounds

    def test_clique_inflates_delivery_accounting(
        self, vcongest_run, clique_run
    ):
        v = vcongest_run.result.metrics
        c = clique_run.result.metrics
        assert c.messages > v.messages  # broadcasts reach all n-1 nodes
        assert c.bits > v.bits

    def test_outputs_nonempty_class_memberships(self, vcongest_run):
        outputs = vcongest_run.result.outputs
        assert len(outputs) == 16
        named = set()
        for classes in outputs.values():
            assert classes == tuple(sorted(classes))
            named.update(classes)
        assert named, "no node reported membership in any valid class"


class TestAgainstCentralized:
    def test_scenario_matches_direct_driver_and_oracle(self):
        """Replaying the scenario's seed path through the core driver
        reproduces its outputs exactly, and the classes the nodes report
        are CDSs per the centralized oracle."""
        run = _scenario().run()
        graph = harary_graph(4, 16)
        rand = ensure_rng(SEED)
        network = Network(graph, rng=rand)
        k_guess = max(1, min(d for _, d in graph.degree()))
        dist = distributed_cds_packing(
            graph, k_guess, rng=rand, network=network
        )
        vg = dist.result.virtual_graph
        valid = set(dist.result.valid_classes)
        expected = {
            v: tuple(sorted(vg.real_classes[v] & valid))
            for v in network.nodes
        }
        assert run.result.outputs == expected
        assert run.result.metrics.rounds == dist.meta_rounds
        # Centralized verification of the distributed object: every valid
        # class projects onto a connected dominating set, and the packing
        # passes the full nx verify (domination, trees, vertex loads).
        for class_id in valid:
            members = vg.classes[class_id].active_reals
            assert is_connected_dominating_set(graph, members)
        dist.packing.verify()


class TestTraceDeterminism:
    def test_transcript_identical_across_runs(self, vcongest_run):
        again = _scenario(trace=True).run()
        assert vcongest_run.trace is not None
        assert vcongest_run.trace.events == again.trace.events

    def test_transcript_recorded_for_clique(self, clique_run):
        assert clique_run.trace is not None
        assert clique_run.trace.events
