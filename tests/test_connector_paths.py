"""Connector paths (Section 4.1): Lemma 4.3 abundance + minimality rules."""

import networkx as nx
import pytest

from repro.core.connector_paths import (
    component_connector_profile,
    count_disjoint_connector_paths,
    long_connector_pairs,
    short_connector_internals,
)
from repro.graphs.connectivity import is_dominating_set, vertex_connectivity
from repro.graphs.generators import harary_graph


def _dominating_two_component_class(graph, rng_seed=3):
    """Build a dominating class with >= 2 components for testing."""
    import random

    rand = random.Random(rng_seed)
    nodes = list(graph.nodes())
    # Two antipodal balls: works on Harary-style circulants.
    n = len(nodes)
    comp_a = {nodes[i] for i in range(0, n // 4)}
    comp_b = {nodes[i] for i in range(n // 2, n // 2 + n // 4)}
    members = comp_a | comp_b
    assert is_dominating_set(graph, members)
    return members, comp_a, comp_b


class TestShortConnectors:
    def test_simple_path_case(self):
        # 0 - 1 - 2: class {0, 2}; vertex 1 is a short connector internal.
        g = nx.path_graph(3)
        internals = short_connector_internals(g, {0}, {0, 2})
        assert internals == {1}

    def test_internal_must_be_outside_class(self):
        g = nx.path_graph(4)
        internals = short_connector_internals(g, {0}, {0, 1, 3})
        assert 1 not in internals

    def test_no_shorts_when_far(self):
        g = nx.path_graph(5)  # 0-1-2-3-4, class {0,4}: distance 4
        internals = short_connector_internals(g, {0}, {0, 4})
        assert internals == set()


class TestLongConnectors:
    def test_two_hop_bridge(self):
        g = nx.path_graph(4)  # 0-1-2-3, class {0,3}
        pairs = long_connector_pairs(g, {0}, {0, 3})
        assert (1, 2) in pairs

    def test_minimality_condition_c(self):
        # Diamond: 0-1, 1-3, 0-2, 2-3 and extra 1-0', where both 1 and 2
        # see both sides -> they are short connectors, not long ones.
        g = nx.Graph([(0, 1), (1, 3), (0, 2), (2, 3)])
        pairs = long_connector_pairs(g, {0}, {0, 3})
        assert pairs == []
        shorts = short_connector_internals(g, {0}, {0, 3})
        assert shorts == {1, 2}


class TestAbundanceLemma:
    @pytest.mark.parametrize("k,n", [(4, 16), (6, 24)])
    def test_lemma_4_3_bound(self, k, n):
        """A dominating class with two components has >= k disjoint
        connector paths for each component (Lemma 4.3)."""
        g = harary_graph(k, n)
        members, comp_a, comp_b = _dominating_two_component_class(g)
        for comp in (comp_a, comp_b):
            count = count_disjoint_connector_paths(g, comp, members)
            assert count.total >= k, (
                f"component has only {count.total} < k={k} connector paths"
            )

    def test_profile_empty_for_connected_class(self):
        g = harary_graph(4, 12)
        members = set(g.nodes())
        assert component_connector_profile(g, members) == []

    def test_profile_covers_all_components(self):
        g = harary_graph(4, 16)
        members, comp_a, comp_b = _dominating_two_component_class(g)
        profile = component_connector_profile(g, members)
        comps = {frozenset(c) for c, _ in profile}
        assert frozenset(comp_a) in comps and frozenset(comp_b) in comps
