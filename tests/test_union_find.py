"""Unit + property tests for the disjoint-set forest (Appendix C substrate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.union_find import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert len(uf) == 3
        assert uf.n_components == 3
        assert all(uf.find(x) == x for x in (1, 2, 3))

    def test_union_reduces_components(self):
        uf = UnionFind([1, 2, 3])
        assert uf.union(1, 2) is True
        assert uf.n_components == 2
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)

    def test_union_idempotent(self):
        uf = UnionFind([1, 2])
        assert uf.union(1, 2) is True
        assert uf.union(1, 2) is False
        assert uf.n_components == 1

    def test_lazy_insertion_on_find(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf
        assert uf.n_components == 1

    def test_component_size(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(0) == 3
        assert uf.component_size(3) == 1

    def test_components_materialization(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        groups = {frozenset(g) for g in uf.components()}
        assert groups == {frozenset({0, 1}), frozenset({2, 3})}

    def test_representatives_one_per_set(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        reps = uf.representatives()
        assert len(reps) == uf.n_components == 4

    def test_hashable_elements(self):
        uf = UnionFind()
        uf.union(("a", 1), ("b", 2))
        assert uf.connected(("a", 1), ("b", 2))

    def test_transitivity(self):
        uf = UnionFind(range(10))
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.connected(0, 9)
        assert uf.n_components == 1

    def test_iteration(self):
        uf = UnionFind([5, 6])
        assert set(iter(uf)) == {5, 6}


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        min_size=0,
        max_size=60,
    )
)
def test_matches_naive_partition(pairs):
    """Union-find agrees with a brute-force partition refinement."""
    uf = UnionFind(range(21))
    naive = {i: {i} for i in range(21)}
    for a, b in pairs:
        uf.union(a, b)
        if naive[a] is not naive[b]:
            merged = naive[a] | naive[b]
            for x in merged:
                naive[x] = merged
    for a in range(21):
        for b in range(a + 1, 21):
            assert uf.connected(a, b) == (naive[b] is naive[a])
    assert uf.n_components == len({id(s) for s in naive.values()})


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
def test_component_sizes_sum_to_n(pairs):
    uf = UnionFind(range(16))
    for a, b in pairs:
        uf.union(a, b)
    assert sum(len(c) for c in uf.components()) == 16
