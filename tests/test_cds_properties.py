"""Property-based paper-invariant checks for the CDS-packing pipeline.

Randomized (seeded, tier-1-fast) hypothesis suite over the defining
invariants of Theorems 1.1/1.2 on sampled k-connected graphs. Every
check goes through the *independent* networkx oracles in
:mod:`repro.graphs.connectivity` — never the index-side fast paths under
test — so a kernel bug cannot vouch for itself:

* every packed class is a connected dominating set (footnote 1);
* the achieved fractional size respects the Ω(k / log n) lower-bound
  shape (with the construction's own conservative constant);
* fractional feasibility: every vertex carries total weight ≤ 1;
* every node sits in at most 3L = O(log n) trees (Theorem 1.1's
  membership bound).
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cds_packing import PackingParameters, construct_cds_packing
from repro.graphs.connectivity import (
    is_connected_dominating_set,
    is_dominating_tree,
    vertex_connectivity,
)
from repro.graphs.generators import harary_graph, random_k_connected

_TOLERANCE = 1e-9

_fast = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _sampled_graph(family: str, k: int, n: int, seed: int):
    if n <= k + 1:
        n = k + 8
    if family == "harary":
        return harary_graph(k, n)
    return random_k_connected(n, k, rng=seed)


@_fast
@given(
    family=st.sampled_from(["harary", "random_k"]),
    k=st.sampled_from([3, 4, 5, 6]),
    n=st.integers(12, 28),
    seed=st.integers(0, 10_000),
)
def test_every_class_is_a_connected_dominating_set(family, k, n, seed):
    """Domination + induced connectivity of every packed class, via the
    nx oracle (not the union-find/bytearray path that selected them)."""
    g = _sampled_graph(family, k, n, seed)
    result = construct_cds_packing(g, k, rng=seed)
    assert result.valid_classes
    for wt in result.packing:
        assert is_connected_dominating_set(g, set(wt.tree.nodes()))
        assert is_dominating_tree(g, wt.tree)


@_fast
@given(
    k=st.sampled_from([3, 4, 5, 6]),
    n=st.integers(12, 28),
    seed=st.integers(0, 10_000),
)
def test_packing_size_lower_bound_shape(k, n, seed):
    """Ω(k / log n): with t = k classes requested, the verified packing's
    size stays above a conservative constant times k / ln n, and never
    exceeds the exact connectivity (the upper certification)."""
    if n <= k + 1:
        n = k + 8
    g = harary_graph(k, n)
    result = construct_cds_packing(
        g, k, params=PackingParameters(class_factor=1.0), rng=seed
    )
    size = result.size
    assert size >= 0.05 * k / math.log(n), (
        f"packing size {size} collapsed below Ω(k/log n) at k={k}, n={n}"
    )
    assert size <= vertex_connectivity(g) + _TOLERANCE


@_fast
@given(
    family=st.sampled_from(["harary", "random_k"]),
    k=st.sampled_from([3, 4, 5]),
    n=st.integers(12, 26),
    seed=st.integers(0, 10_000),
)
def test_per_vertex_fractional_feasibility(family, k, n, seed):
    """Σ_{τ ∋ v} x_τ ≤ 1 at every vertex, recomputed from the trees."""
    g = _sampled_graph(family, k, n, seed)
    result = construct_cds_packing(g, k, rng=seed)
    loads = result.packing.node_loads()
    assert max(loads.values()) <= 1.0 + _TOLERANCE
    for wt in result.packing:
        assert 0.0 <= wt.weight <= 1.0 + _TOLERANCE
    assert abs(result.size - sum(wt.weight for wt in result.packing)) <= _TOLERANCE


@_fast
@given(
    k=st.sampled_from([3, 4, 5]),
    n=st.integers(12, 26),
    seed=st.integers(0, 10_000),
)
def test_membership_bound(k, n, seed):
    """Each node appears in at most 3L trees — Theorem 1.1's O(log n)
    membership bound, with L the constructed layer count."""
    if n <= k + 1:
        n = k + 8
    g = harary_graph(k, n)
    result = construct_cds_packing(g, k, rng=seed)
    bound = 3 * result.virtual_graph.layers
    counts = result.packing.trees_per_node()
    assert max(counts.values()) <= bound
