"""Appendix G.1 construction: Lemmas G.3 and G.4 verified exactly."""

import itertools

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.connectivity import min_vertex_cut, vertex_connectivity
from repro.lowerbounds.construction import (
    build_g_xy,
    build_h_xy,
    expected_min_cut,
)


class TestHConstruction:
    def test_node_inventory(self):
        inst = build_h_xy(h=3, ell=2, x_set={1}, y_set={2})
        g = inst.graph
        # (h+1)·2ℓ path nodes + a + b + |X| + |Y|
        assert g.number_of_nodes() == 4 * 4 + 2 + 1 + 1

    def test_diameter_at_most_three(self):
        inst = build_h_xy(h=4, ell=3, x_set={1, 2}, y_set={2, 3})
        assert nx.diameter(inst.graph) <= 3

    def test_encoding_edges(self):
        inst = build_h_xy(h=3, ell=2, x_set={2}, y_set=set())
        g = inst.graph
        assert g.has_edge(("u", 2), (0, 1))
        assert g.has_edge(("u", 2), (2, 1))
        assert not g.has_edge((0, 1), (2, 1))  # x in X: no direct edge
        assert g.has_edge((0, 1), (1, 1))      # x not in X: direct edge

    def test_rejects_bad_sets(self):
        with pytest.raises(GraphValidationError):
            build_h_xy(h=3, ell=2, x_set={5}, y_set=set())


class TestGBlowup:
    def test_heavy_nodes_become_cliques(self):
        inst = build_g_xy(h=2, ell=1, w=3, x_set=set(), y_set=set())
        g = inst.graph
        clique = [(0, 1, c) for c in range(3)]
        for a, b in itertools.combinations(clique, 2):
            assert g.has_edge(a, b)

    def test_lemma_g4_intersection_case(self):
        """|X∩Y| = 1: κ = 4 and the min cut is {a, b, u_z, v_z}."""
        inst = build_g_xy(h=3, ell=2, w=5, x_set={1, 2}, y_set={2, 3})
        assert vertex_connectivity(inst.graph) == 4
        cut = min_vertex_cut(inst.graph)
        size, expected = expected_min_cut(inst)
        assert size == 4
        assert cut == expected

    def test_lemma_g4_disjoint_case(self):
        """X∩Y = ∅: every vertex cut has size >= w."""
        inst = build_g_xy(h=3, ell=2, w=5, x_set={1}, y_set={3})
        assert vertex_connectivity(inst.graph) >= 5

    def test_diameter_at_most_three(self):
        inst = build_g_xy(h=3, ell=2, w=4, x_set={1, 3}, y_set={2, 3})
        assert nx.diameter(inst.graph) <= 3

    @pytest.mark.parametrize("h", [2, 3])
    def test_exhaustive_small_grid(self, h):
        """Exhaustively verify the cut dichotomy over all promise instances
        on a small universe (E13 in miniature)."""
        universe = list(range(1, h + 1))
        subsets = [
            frozenset(c)
            for r in range(h + 1)
            for c in itertools.combinations(universe, r)
        ]
        for x_set in subsets:
            for y_set in subsets:
                inter = x_set & y_set
                if len(inter) > 1:
                    continue  # outside the promise
                inst = build_g_xy(h=h, ell=1, w=5, x_set=x_set, y_set=y_set)
                kappa = vertex_connectivity(inst.graph)
                if len(inter) == 1:
                    assert kappa == 4, (x_set, y_set)
                else:
                    assert kappa >= 5, (x_set, y_set)

    def test_frontier_sets(self):
        inst = build_g_xy(h=2, ell=2, w=2, x_set={1}, y_set={2})
        left, right = inst.left_nodes(), inst.right_nodes()
        assert inst.node_a in left and inst.node_b not in left
        assert inst.node_b in right and inst.node_a not in right
        # Overlap covers the middle columns.
        assert left | right == set(inst.graph.nodes())
