"""Tests for the point-to-point oblivious routing contrast ([24])."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.apps.point_to_point import (
    adversarial_grid_demands,
    grid_competitiveness,
    grid_graph,
    row_column_route,
    staircase_route,
    vertex_congestion_of_routes,
)
from repro.errors import GraphValidationError


class TestRoutes:
    def test_row_column_route_is_a_grid_path(self):
        graph = grid_graph(6)
        route = row_column_route((0, 1), (4, 5))
        assert route[0] == (0, 1)
        assert route[-1] == (4, 5)
        for a, b in zip(route, route[1:]):
            assert graph.has_edge(a, b)

    def test_row_column_handles_all_quadrants(self):
        for target in [(0, 0), (0, 5), (5, 0), (5, 5), (2, 3)]:
            route = row_column_route((2, 2), target)
            assert route[-1] == target

    def test_route_to_self_is_singleton(self):
        assert row_column_route((3, 3), (3, 3)) == [(3, 3)]

    def test_staircase_route_valid(self):
        graph = grid_graph(8)
        route = staircase_route((0, 2), (7, 5), bend_row=4)
        assert route[0] == (0, 2)
        assert route[-1] == (7, 5)
        assert (4, 2) in route and (4, 5) in route
        for a, b in zip(route, route[1:]):
            assert graph.has_edge(a, b)

    def test_congestion_counter(self):
        routes = [[(0, 0), (0, 1)], [(0, 1), (0, 2)], [(1, 0)]]
        assert vertex_congestion_of_routes(routes) == 2

    def test_congestion_of_nothing(self):
        assert vertex_congestion_of_routes([]) == 0


class TestAdversarialDemands:
    def test_reversal_permutation_default(self):
        demands = adversarial_grid_demands(5)
        assert demands[0] == ((0, 0), (4, 4))
        assert demands[4] == ((0, 4), (4, 0))

    def test_random_permutation_under_seed(self):
        first = adversarial_grid_demands(6, rng=3)
        second = adversarial_grid_demands(6, rng=3)
        assert first == second
        targets = sorted(t[1] for _, t in first)
        assert targets == list(range(6))


class TestCompetitiveness:
    def test_oblivious_congestion_equals_side(self):
        """Under the reversal permutation, the middle of row 0 carries
        every message: congestion exactly √n."""
        for side in (4, 8, 12):
            report = grid_competitiveness(side)
            assert report.oblivious_congestion == side

    def test_offline_congestion_is_constant(self):
        reports = [grid_competitiveness(side) for side in (4, 8, 12, 16)]
        assert all(r.offline_congestion <= 3 for r in reports)

    def test_competitiveness_grows_linearly_in_side(self):
        """The measurable content of the Θ(√n) lower bound of [24]."""
        small = grid_competitiveness(4)
        large = grid_competitiveness(16)
        assert large.competitiveness >= 3.5 * small.competitiveness

    def test_rejects_tiny_grid(self):
        with pytest.raises(GraphValidationError):
            grid_competitiveness(1)

    def test_broadcast_routing_escapes_the_bound(self):
        """The same grid, routed by the Corollary 1.6 broadcast scheme,
        stays within O(log n)·lower-bound — the contrast the paper
        draws."""
        import math

        from repro.apps.oblivious_routing import vertex_congestion_report
        from repro.core.cds_packing import fractional_cds_packing
        from repro.graphs.connectivity import vertex_connectivity

        side = 5
        graph = nx.convert_node_labels_to_integers(grid_graph(side))
        k = vertex_connectivity(graph)
        result = fractional_cds_packing(graph, rng=3)
        sources = {i: i % graph.number_of_nodes() for i in range(25)}
        report = vertex_congestion_report(
            result.packing, sources, k, rng=5
        )
        n = graph.number_of_nodes()
        # generous constant; the claim is the log n *shape*
        assert report.competitiveness <= 30 * math.log(n)
