"""Incremental re-canonicalization == from-scratch, bit for bit.

:meth:`IndexedGraph.add_edge` / :meth:`IndexedGraph.remove_edge` splice
the canonical edge arrays and the neighbor lists in place; the contract
is that after *any* edit schedule the index is **indistinguishable**
from ``IndexedGraph.from_networkx`` of the equally-edited ``nx.Graph``
— same node order, same (u, v) arrays, same neighbor lists. The same
contract one level up: a mutated :class:`GraphSession` must be
byte-identical (fingerprints, payload JSON, simulation traces) to a
fresh session built from the final graph.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.api import GraphSession
from repro.errors import GraphValidationError
from repro.fastgraph import IndexedGraph
from repro.graphs.generators import harary_graph, hypercube, torus_grid


def assert_same_index(actual: IndexedGraph, expected: IndexedGraph) -> None:
    assert actual.nodes == expected.nodes
    assert actual.index_of == expected.index_of
    assert (actual.n, actual.m) == (expected.n, expected.m)
    assert actual.u == expected.u
    assert actual.v == expected.v
    assert actual.neighbors() == expected.neighbors()


def random_schedule(graph: nx.Graph, rng: random.Random, steps: int):
    """Yield (op, a, b) edits keeping the graph connected and loop-free."""
    for _ in range(steps):
        if rng.random() < 0.55 or graph.number_of_edges() <= graph.number_of_nodes():
            # add a random non-edge (occasionally to a brand-new node)
            nodes = list(graph.nodes())
            if rng.random() < 0.1:
                a = rng.choice(nodes)
                b = max(
                    (n for n in nodes if isinstance(n, int)), default=0
                ) + 1 + rng.randrange(3)
                if graph.has_edge(a, b) or a == b:
                    continue
            else:
                a, b = rng.sample(nodes, 2)
                if graph.has_edge(a, b):
                    continue
            yield ("add", a, b)
        else:
            # remove a random edge whose removal keeps the graph
            # connected — probing on a *copy*: remove+re-add on the
            # shared graph would move the probed edge to the end of
            # nx's adjacency insertion order and scramble the very
            # canonical order the differential pins.
            edges = list(graph.edges())
            rng.shuffle(edges)
            for a, b in edges:
                probe = graph.copy()
                probe.remove_edge(a, b)
                if nx.is_connected(probe):
                    yield ("remove", a, b)
                    break


BASE_GRAPHS = [
    ("harary", lambda: harary_graph(4, 14)),
    ("hypercube", lambda: hypercube(3)),
    ("torus", lambda: torus_grid(3, 4)),
]


@pytest.mark.parametrize("name,build", BASE_GRAPHS, ids=[g[0] for g in BASE_GRAPHS])
@pytest.mark.parametrize("schedule_seed", range(6))
def test_incremental_matches_scratch(name, build, schedule_seed):
    """Randomized edit schedules: spliced index == rebuilt index."""
    salt = sum(ord(c) for c in name)  # deterministic, unlike hash()
    rng = random.Random(1000 * schedule_seed + salt)
    graph = build()
    indexed = IndexedGraph.from_networkx(graph)
    for op, a, b in random_schedule(graph, rng, steps=20):
        if op == "add":
            indexed.add_edge(a, b)
            graph.add_edge(a, b)
        else:
            indexed.remove_edge(a, b)
            graph.remove_edge(a, b)
        assert_same_index(indexed, IndexedGraph.from_networkx(graph))


def test_incremental_cold_neighbors():
    """Edits before the neighbor lists were ever materialized."""
    graph = harary_graph(4, 10)
    indexed = IndexedGraph.from_networkx(graph)
    indexed.add_edge(0, 5)
    graph.add_edge(0, 5)
    indexed.remove_edge(0, 1)
    graph.remove_edge(0, 1)
    assert_same_index(indexed, IndexedGraph.from_networkx(graph))


def test_add_edge_new_nodes_appended_in_order():
    graph = nx.path_graph(4)
    indexed = IndexedGraph.from_networkx(graph)
    indexed.add_edge(10, 11)  # both endpoints brand new
    graph.add_edge(10, 11)
    assert_same_index(indexed, IndexedGraph.from_networkx(graph))
    assert indexed.nodes[-2:] == [10, 11]


def test_mutation_rejects_self_loop_and_duplicates():
    indexed = IndexedGraph.from_networkx(nx.path_graph(4))
    with pytest.raises(ValueError):
        indexed.add_edge(2, 2)
    with pytest.raises(ValueError):
        indexed.add_edge(0, 1)  # already present
    with pytest.raises(KeyError):
        indexed.remove_edge(0, 2)  # not present


def test_has_edge_and_generation():
    indexed = IndexedGraph.from_networkx(nx.cycle_graph(5))
    assert indexed.generation == 0
    assert indexed.has_edge(0, 1) and indexed.has_edge(1, 0)
    assert not indexed.has_edge(0, 2)
    indexed.add_edge(0, 2)
    assert indexed.generation == 1
    assert indexed.has_edge(0, 2)
    indexed.remove_edge(0, 2)
    assert indexed.generation == 2
    assert not indexed.has_edge(0, 2)


def test_non_canonical_index_refuses_mutation():
    """Hand-built indexes without the canonical order can't be spliced."""
    indexed = IndexedGraph([0, 1, 2], [(1, 0), (0, 2)])  # u[0] > v[0]
    with pytest.raises(ValueError):
        indexed.add_edge(1, 2)


# -- session-level differential --------------------------------------------


def edit_session_and_graph(session, graph, rng, steps=10):
    """Apply one connectivity-preserving schedule to both; returns the
    number of edits actually applied (the schedule may skip steps)."""
    applied = 0
    for op, a, b in random_schedule(graph, rng, steps):
        if op == "add":
            session.add_edge(a, b)
            graph.add_edge(a, b)
        else:
            session.remove_edge(a, b)
            graph.remove_edge(a, b)
        applied += 1
    return applied


@pytest.mark.parametrize("schedule_seed", range(3))
def test_session_differential_byte_identity(schedule_seed):
    """A mutated session == a fresh session from the final graph.

    Fingerprint, connectivity/packing payload JSON, and simulation
    traces must agree byte for byte — the acceptance criterion of the
    incremental re-canonicalization layer.
    """
    rng = random.Random(42 + schedule_seed)
    graph = harary_graph(4, 12)
    session = GraphSession(graph, label="edited")
    session.connectivity(seed=1)  # warm the index + caches pre-edit
    shadow = graph.copy()
    applied = edit_session_and_graph(session, shadow, rng, steps=12)
    assert applied >= 6  # the schedule really exercised the splice path

    fresh = GraphSession(shadow.copy(), label="edited")
    assert session.fingerprint == fresh.fingerprint
    assert (
        session.connectivity(seed=1).canonical_json()
        == fresh.connectivity(seed=1).canonical_json()
    )
    assert (
        session.pack_cds(seed=2).canonical_json()
        == fresh.pack_cds(seed=2).canonical_json()
    )
    assert (
        session.simulate(program="flood-min", seed=3).canonical_json()
        == fresh.simulate(program="flood-min", seed=3).canonical_json()
    )
    assert session.stats["mutations"] == applied
    assert session.stats["canonicalizations"] == 1  # never rebuilt


def test_session_mutation_invalidates_dependent_layers():
    session = GraphSession("harary:4,12")
    before = session.connectivity(seed=0)
    fp_before = session.fingerprint
    cds_before = session.cds_index
    session.add_edge(0, 6)
    assert session.generation == 1
    assert session.fingerprint != fp_before
    assert session.cds_index is not cds_before  # rebuilt lazily
    after = session.connectivity(seed=0)
    assert after.payload != before.payload or after.fingerprint != before.fingerprint
    assert session.stats["invalidations"] >= 1
    # undo: everything converges back to the original fingerprint
    session.remove_edge(0, 6)
    assert session.fingerprint == fp_before


def test_session_mutation_validation_errors():
    session = GraphSession("harary:4,12")
    with pytest.raises(GraphValidationError):
        session.add_edge(3, 3)
    with pytest.raises(GraphValidationError):
        session.add_edge(0, 1)
    with pytest.raises(GraphValidationError):
        session.remove_edge(0, 5)
    assert session.stats["mutations"] == 0


def test_session_result_cache_lru_bound():
    """The per-session result cache is bounded and counts evictions."""
    session = GraphSession("harary:4,12", cache_limit=3)
    for seed in range(6):
        session.simulate  # no-op attr touch; simulate is uncached
        session.connectivity(seed=seed)
    assert len(session._results) <= 3
    assert session.stats["evictions"] > 0
    # most-recent seeds are still warm
    hits_before = session.stats["cache_hits"]
    session.connectivity(seed=5)
    assert session.stats["cache_hits"] == hits_before + 1


def test_session_cache_limit_validation():
    with pytest.raises(GraphValidationError):
        GraphSession("harary:4,12", cache_limit=0)
    GraphSession("harary:4,12", cache_limit=None)  # unbounded is allowed
