"""Corollary 1.7: O(log n) vertex connectivity approximation."""

import math

import networkx as nx
import pytest

from repro.core.vertex_connectivity import (
    approximate_vertex_connectivity,
    estimate_from_packing,
)
from repro.core.cds_packing import construct_cds_packing
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    torus_grid,
)


class TestApproximation:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: harary_graph(4, 20),
            lambda: harary_graph(6, 24),
            lambda: clique_chain(4, 5),
            lambda: fat_cycle(3, 6),
            lambda: hypercube(4),
            lambda: torus_grid(5, 5),
        ],
    )
    def test_interval_contains_true_k(self, builder):
        g = builder()
        k = vertex_connectivity(g)
        est = approximate_vertex_connectivity(g, rng=81)
        assert est.contains(k), (
            f"true k={k} outside [{est.lower_bound}, {est.upper_bound}]"
        )

    def test_approximation_ratio_is_logarithmic(self):
        g = harary_graph(6, 24)
        est = approximate_vertex_connectivity(g, rng=82)
        n = g.number_of_nodes()
        ratio = est.upper_bound / max(est.lower_bound, 1)
        assert ratio <= 12 * math.log(n)

    def test_lower_bound_is_certified(self):
        """lower_bound <= k holds unconditionally (cut argument)."""
        for builder in (lambda: harary_graph(4, 16), lambda: hypercube(3)):
            g = builder()
            k = vertex_connectivity(g)
            est = approximate_vertex_connectivity(g, rng=83)
            assert est.lower_bound <= k + 1e-9

    def test_estimate_inside_interval(self):
        g = harary_graph(4, 16)
        est = approximate_vertex_connectivity(g, rng=84)
        assert est.lower_bound <= est.estimate <= est.upper_bound

    def test_from_existing_packing(self):
        g = harary_graph(5, 20)
        result = construct_cds_packing(g, 5, rng=85)
        est = estimate_from_packing(g, result)
        assert est.packing_size == pytest.approx(result.size)
        assert est.n_trees == len(result.packing)

    def test_cycle_low_connectivity(self):
        g = nx.cycle_graph(16)
        est = approximate_vertex_connectivity(g, rng=86)
        assert est.contains(2)
