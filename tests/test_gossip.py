"""Gossiping (Appendix A / Corollary A.1)."""

import pytest

from repro.apps.gossip import gossip, place_messages
from repro.core.cds_packing import construct_cds_packing
from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph


@pytest.fixture(scope="module")
def packing():
    g = harary_graph(6, 24)
    return construct_cds_packing(g, 6, rng=111).packing


class TestPlacement:
    def test_respects_cap(self):
        placement = place_messages(list(range(10)), 20, max_per_node=2, rng=1)
        loads = {}
        for v in placement.values():
            loads[v] = loads.get(v, 0) + 1
        assert max(loads.values()) <= 2

    def test_rejects_impossible(self):
        with pytest.raises(GraphValidationError):
            place_messages(list(range(3)), 10, max_per_node=2, rng=1)


class TestGossip:
    def test_default_all_to_all(self, packing):
        outcome = gossip(packing, rng=2)
        assert outcome.n_messages == 24
        assert outcome.rounds > 0

    def test_reference_bound_shape(self, packing):
        """Corollary A.1: rounds = Õ(η + (N+n)/σ); the measured slowdown
        over the un-log'd reference stays modest."""
        outcome = gossip(packing, rng=3)
        assert outcome.slowdown <= 25

    def test_larger_n_messages(self, packing):
        small = gossip(packing, n_messages=8, max_per_node=2, rng=4)
        large = gossip(packing, n_messages=40, max_per_node=3, rng=4)
        assert large.rounds >= small.rounds * 0.5
        assert large.n_messages == 40
