"""Shared gating for tests that run the sharded multiprocess engine.

The engine needs the ``fork`` start method; on single-core runners the
fan-out only adds scheduling noise, so those skip unless explicitly
forced with ``REPRO_SHARDED_TESTS=1`` (CI sets it). One predicate, one
reason string — every suite that exercises the sharded engine imports
these instead of re-deriving the policy.
"""

from __future__ import annotations

import os

from repro.simulator.runner_sharded import fork_available

SHARDED_TESTS_OK = fork_available() and (
    (os.cpu_count() or 1) >= 2
    or os.environ.get("REPRO_SHARDED_TESTS") == "1"
)
SHARDED_SKIP_REASON = (
    "sharded engine tests need the fork start method and >= 2 cores "
    "(set REPRO_SHARDED_TESTS=1 to force on a single core)"
)
