"""Unit + property tests for the Dinic max-flow baseline."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.maxflow import FlowNetwork, max_flow, min_cut
from repro.errors import GraphValidationError


def _diamond() -> FlowNetwork:
    """s → {a, b} → t with asymmetric capacities and a cross edge."""
    net = FlowNetwork()
    net.add_edge("s", "a", 10)
    net.add_edge("s", "b", 5)
    net.add_edge("a", "b", 15)
    net.add_edge("a", "t", 4)
    net.add_edge("b", "t", 9)
    return net


class TestFlowNetworkBasics:
    def test_single_arc(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 7)
        assert net.max_flow("s", "t") == 7

    def test_serial_arcs_bottleneck(self):
        net = FlowNetwork()
        net.add_edge("s", "m", 9)
        net.add_edge("m", "t", 3)
        assert net.max_flow("s", "t") == 3

    def test_parallel_arcs_add(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 2)
        net.add_edge("s", "t", 3)
        assert net.max_flow("s", "t") == 5

    def test_diamond_value(self):
        assert _diamond().max_flow("s", "t") == 13

    def test_no_path_means_zero(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 4)
        net.add_edge("t", "b", 4)  # arc *out of* t; no s→t path
        assert net.max_flow("s", "t") == 0

    def test_antiparallel_arcs(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 6)
        net.add_edge("t", "s", 2)
        assert net.max_flow("s", "t") == 6

    def test_zero_capacity_arc(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 0)
        assert net.max_flow("s", "t") == 0

    def test_reset_flow_allows_reuse(self):
        net = _diamond()
        assert net.max_flow("s", "t") == 13
        net.reset_flow()
        assert net.max_flow("s", "t") == 13

    def test_arc_count_excludes_twins(self):
        assert _diamond().arc_count == 5

    def test_rejects_negative_capacity(self):
        net = FlowNetwork()
        with pytest.raises(GraphValidationError):
            net.add_edge("s", "t", -1)

    def test_rejects_self_loop(self):
        net = FlowNetwork()
        with pytest.raises(GraphValidationError):
            net.add_edge("s", "s", 1)

    def test_rejects_equal_terminals(self):
        net = _diamond()
        with pytest.raises(GraphValidationError):
            net.max_flow("s", "s")

    def test_rejects_unknown_terminal(self):
        net = _diamond()
        with pytest.raises(GraphValidationError):
            net.max_flow("s", "missing")


class TestMinCut:
    def test_cut_separates_and_matches_value(self):
        net = _diamond()
        value, side = min_cut(net, "s", "t")
        assert value == 13
        assert "s" in side
        assert "t" not in side

    def test_cut_capacity_equals_flow_value(self):
        """Duality check on a random directed network."""
        rng = random.Random(42)
        for _ in range(25):
            n = rng.randint(4, 10)
            arcs = []
            net = FlowNetwork()
            nodes = list(range(n))
            for u in nodes:
                for v in nodes:
                    if u != v and rng.random() < 0.4:
                        capacity = rng.randint(1, 9)
                        net.add_edge(u, v, capacity)
                        arcs.append((u, v, capacity))
            if not net.has_node(0) or not net.has_node(n - 1):
                continue
            value, side = min_cut(net, 0, n - 1)
            crossing = sum(
                capacity
                for u, v, capacity in arcs
                if u in side and v not in side
            )
            assert crossing == value


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 12))
def test_matches_networkx_on_random_digraphs(seed, n):
    """Flow value agrees with networkx's independent implementation."""
    rng = random.Random(seed)
    net = FlowNetwork()
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.35:
                capacity = rng.randint(1, 12)
                net.add_edge(u, v, capacity)
                nx_graph.add_edge(u, v, capacity=capacity)
    net.node_index(0)
    net.node_index(n - 1)
    expected = nx.maximum_flow_value(nx_graph, 0, n - 1)
    assert net.max_flow(0, n - 1) == expected


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_unit_capacity_flow_equals_edge_disjoint_paths(seed):
    """On unit capacities the flow counts edge-disjoint paths (Menger)."""
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(10, 0.45, seed=rng.randint(0, 10**6))
    if not nx.is_connected(graph):
        return
    net = FlowNetwork()
    for u, v in graph.edges():
        net.add_edge(u, v, 1)
        net.add_edge(v, u, 1)
    expected = len(list(nx.edge_disjoint_paths(graph, 0, 9)))
    assert net.max_flow(0, 9) == expected


def test_long_path_does_not_recurse():
    """A 5000-arc path exercises the iterative blocking-flow DFS."""
    net = FlowNetwork()
    length = 5000
    for i in range(length):
        net.add_edge(i, i + 1, 2)
    assert net.max_flow(0, length) == 2
