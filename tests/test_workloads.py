"""Tests for the message workload generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.workloads import (
    balanced_workload,
    max_messages_per_node,
    messages_per_node,
    per_node_capped_workload,
    single_source_workload,
    skewed_workload,
    uniform_workload,
)
from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph


@pytest.fixture
def graph():
    return harary_graph(4, 12)


class TestUniform:
    def test_ids_and_membership(self, graph):
        workload = uniform_workload(graph, 30, rng=1)
        assert sorted(workload) == list(range(30))
        assert all(graph.has_node(v) for v in workload.values())

    def test_deterministic(self, graph):
        assert uniform_workload(graph, 20, rng=5) == uniform_workload(
            graph, 20, rng=5
        )

    def test_rejects_zero_messages(self, graph):
        with pytest.raises(GraphValidationError):
            uniform_workload(graph, 0)

    def test_rejects_empty_graph(self):
        with pytest.raises(GraphValidationError):
            uniform_workload(nx.Graph(), 3)

    def test_spreads_over_many_nodes(self, graph):
        workload = uniform_workload(graph, 240, rng=2)
        used = set(workload.values())
        assert len(used) >= graph.number_of_nodes() // 2


class TestSingleSource:
    def test_all_at_default_source(self, graph):
        workload = single_source_workload(graph, 9)
        assert len(set(workload.values())) == 1

    def test_explicit_source(self, graph):
        workload = single_source_workload(graph, 5, source=7)
        assert set(workload.values()) == {7}

    def test_eta_equals_n_messages(self, graph):
        workload = single_source_workload(graph, 11)
        assert max_messages_per_node(graph, workload) == 11

    def test_rejects_unknown_source(self, graph):
        with pytest.raises(GraphValidationError):
            single_source_workload(graph, 3, source="nope")


class TestBalanced:
    def test_eta_is_ceiling(self, graph):
        workload = balanced_workload(graph, 30)  # 30 over 12 nodes
        counts = messages_per_node(graph, workload)
        assert max(counts.values()) == 3
        assert min(counts.values()) == 2

    def test_exact_multiple(self, graph):
        workload = balanced_workload(graph, 24)
        counts = messages_per_node(graph, workload)
        assert set(counts.values()) == {2}

    def test_fewer_messages_than_nodes(self, graph):
        workload = balanced_workload(graph, 5)
        assert max_messages_per_node(graph, workload) == 1


class TestSkewed:
    def test_zero_exponent_behaves_like_uniform(self, graph):
        workload = skewed_workload(graph, 200, exponent=0.0, rng=3)
        counts = messages_per_node(graph, workload)
        assert max(counts.values()) < 200 // 3

    def test_high_exponent_concentrates(self, graph):
        workload = skewed_workload(graph, 200, exponent=4.0, rng=3)
        counts = messages_per_node(graph, workload)
        # The rank-0 node must dominate under s = 4.
        assert max(counts.values()) > 100

    def test_rejects_negative_exponent(self, graph):
        with pytest.raises(GraphValidationError):
            skewed_workload(graph, 5, exponent=-1.0)

    def test_deterministic(self, graph):
        first = skewed_workload(graph, 50, exponent=1.5, rng=9)
        second = skewed_workload(graph, 50, exponent=1.5, rng=9)
        assert first == second


class TestCapped:
    def test_cap_is_respected(self, graph):
        workload = per_node_capped_workload(graph, 20, max_per_node=2, rng=4)
        assert max_messages_per_node(graph, workload) <= 2
        assert len(workload) == 20

    def test_tight_cap_fills_exactly(self, graph):
        workload = per_node_capped_workload(graph, 24, max_per_node=2, rng=4)
        counts = messages_per_node(graph, workload)
        assert set(counts.values()) == {2}

    def test_rejects_impossible_cap(self, graph):
        with pytest.raises(GraphValidationError):
            per_node_capped_workload(graph, 25, max_per_node=2)

    def test_rejects_bad_cap(self, graph):
        with pytest.raises(GraphValidationError):
            per_node_capped_workload(graph, 5, max_per_node=0)


class TestHistogram:
    def test_counts_sum_to_n(self, graph):
        workload = uniform_workload(graph, 40, rng=6)
        counts = messages_per_node(graph, workload)
        assert sum(counts.values()) == 40

    def test_rejects_foreign_node(self, graph):
        with pytest.raises(GraphValidationError):
            messages_per_node(graph, {0: "ghost"})

    def test_empty_workload_eta_zero(self, graph):
        assert max_messages_per_node(graph, {}) == 0
