"""api-smoke: every CLI subcommand runs on a tiny graph and, where a
``--json`` mode exists, emits valid envelope JSON.

This mirrors the CI ``api-smoke`` job in-process so a broken subcommand
is a tier-1 failure before it is a CI failure.
"""

from __future__ import annotations

import json

import pytest

from repro.api.envelope import Result
from repro.cli import main

TINY = "harary:4,10"


@pytest.mark.parametrize(
    "argv",
    [
        ["info"],
        ["connectivity", TINY],
        ["pack-cds", TINY, "--seed", "3"],
        ["pack-spanning", "hypercube:3", "--seed", "5"],
        ["broadcast", TINY, "--messages", "4", "--seed", "7"],
        ["broadcast", "hypercube:3", "--messages", "4", "--transport", "edge"],
        ["simulate", TINY, "--program", "flood-min", "--seed", "3"],
        ["simulate", "--list-programs"],
        ["experiments"],
        ["report", TINY, "--seed", "5"],
    ],
)
def test_subcommand_exits_zero(argv, capsys):
    assert main(argv) == 0
    assert capsys.readouterr().out  # said *something*


@pytest.mark.parametrize(
    "argv",
    [
        ["connectivity", TINY, "--json"],
        ["pack-cds", TINY, "--seed", "3", "--json"],
        ["pack-spanning", "hypercube:3", "--seed", "5", "--json"],
        ["broadcast", TINY, "--messages", "4", "--json"],
        ["simulate", TINY, "--program", "flood-min", "--json"],
    ],
)
def test_json_mode_emits_a_valid_envelope(argv, capsys):
    assert main(argv) == 0
    out = capsys.readouterr().out
    envelope = Result.from_json(out)
    assert envelope.graph in (TINY, "hypercube:3")
    assert envelope.payload


class TestBatchSubcommand:
    def _jobs_file(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                {
                    "graphs": [TINY, "hypercube:3"],
                    "tasks": ["connectivity", "pack_cds"],
                    "trials": 1,
                }
            )
        )
        return str(path)

    def test_batch_to_stdout_is_jsonl(self, tmp_path, capsys):
        assert main(["batch", self._jobs_file(tmp_path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            Result.from_json(line)

    def test_batch_to_file_reports_row_count(self, tmp_path, capsys):
        jobs = self._jobs_file(tmp_path)
        out = tmp_path / "rows.jsonl"
        assert main(["batch", jobs, "--out", str(out)]) == 0
        assert "wrote 4 row(s)" in capsys.readouterr().out
        # same spec file -> byte-identical output (the acceptance gate)
        again = tmp_path / "rows2.jsonl"
        assert main(["batch", jobs, "--out", str(again)]) == 0
        assert out.read_bytes() == again.read_bytes()

    def test_batch_failure_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"graph": "mystery:1"}]))
        assert main(["batch", str(path)]) == 1
        row = json.loads(capsys.readouterr().out.strip())
        assert "error" in row["payload"]
