"""Hypothesis round-trip properties for the result-envelope codec.

``tests/test_api_envelope.py`` pins the codec with examples; this file
closes the gap with *generated* payloads: arbitrarily nested
``Fraction`` / ``frozenset`` / ``set`` / ``tuple`` / non-string-key
dict values — exactly the algebra
:func:`repro.api.envelope.encode_value` promises to tag — must survive
``decode(encode(v)) == v``, a real JSON text round trip, and the full
:class:`~repro.api.envelope.Result` serialization cycle, and must
encode deterministically (the batch executor's byte-identity depends on
it).
"""

from __future__ import annotations

import json
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.api.envelope import Result, decode_value, encode_value

# Scalars the codec passes through (floats: NaN breaks == by design of
# IEEE, not of the codec, so it is excluded; ±inf round-trips through
# python's json and stays).
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.text(max_size=12)
    | st.fractions()
)

# Hashable values — legal as set elements and dict keys. Built from the
# same scalars so a nested frozenset-of-tuples-of-Fractions is fair game.
_hashables = st.recursive(
    _scalars,
    lambda children: (
        st.lists(children, max_size=3).map(tuple)
        | st.frozensets(children, max_size=3)
    ),
    max_leaves=8,
)

# The full value algebra of the codec.
_values = st.recursive(
    _scalars,
    lambda children: (
        st.lists(children, max_size=3)
        | st.lists(children, max_size=3).map(tuple)
        | st.frozensets(_hashables, max_size=3)
        | st.sets(_hashables, max_size=3)
        # str-keyed dicts — including keys that collide with the codec's
        # own tags, which must be escaped through the tagged-dict path.
        | st.dictionaries(
            st.text(max_size=8)
            | st.sampled_from(
                ["__fraction__", "__frozenset__", "__set__",
                 "__tuple__", "__dict__"]
            ),
            children,
            max_size=3,
        )
        | st.dictionaries(_hashables, children, max_size=3)
    ),
    max_leaves=16,
)


@settings(max_examples=150, deadline=None)
@given(_values)
def test_decode_inverts_encode(value):
    assert decode_value(encode_value(value)) == value


@settings(max_examples=150, deadline=None)
@given(_values)
def test_round_trip_through_json_text(value):
    """The encoded form must be genuine JSON — through the *text*, not
    just the object graph — and come back equal."""
    text = json.dumps(encode_value(value), sort_keys=True)
    assert decode_value(json.loads(text)) == value


@settings(max_examples=100, deadline=None)
@given(_values)
def test_round_trip_preserves_container_types(value):
    """Equality alone lets a tuple come back as a list (`==` is False
    for those, but nested positions inside == containers could hide
    type drift); diff the full type structure explicitly."""

    def shape(item):
        if isinstance(item, (list, tuple)):
            return (type(item).__name__, [shape(x) for x in item])
        if isinstance(item, (set, frozenset)):
            return (
                type(item).__name__,
                sorted((repr(shape(x)) for x in item)),
            )
        if isinstance(item, dict):
            return (
                "dict",
                sorted(
                    (repr((shape(k), shape(v)))) for k, v in item.items()
                ),
            )
        return type(item).__name__

    assert shape(decode_value(encode_value(value))) == shape(value)


@settings(max_examples=100, deadline=None)
@given(_values)
def test_encoding_is_deterministic(value):
    """Two encodings of the same value serialize to the same bytes —
    the property the batch executor's byte-identical JSONL rests on
    (sets are the dangerous case: iteration order varies)."""
    first = json.dumps(encode_value(value), sort_keys=True)
    second = json.dumps(encode_value(value), sort_keys=True)
    assert first == second


@settings(max_examples=100, deadline=None)
@given(
    payload=st.dictionaries(st.text(max_size=8), _values, max_size=4),
    params=st.dictionaries(st.text(max_size=8), _values, max_size=3),
    seed=st.none() | st.integers(min_value=0, max_value=2**63 - 1),
)
def test_result_envelope_round_trips(payload, params, seed):
    result = Result(
        task="property",
        graph="harary:4,12",
        fingerprint="abc123",
        n=12,
        m=24,
        seed=seed,
        params=params,
        payload=payload,
        timings={"total_s": 0.25},
    )
    assert Result.from_json(result.to_json()) == result
    # The canonical row is stable and timing-free.
    assert result.canonical_json() == result.canonical_json()
    assert "timings" not in json.loads(result.canonical_json())


@settings(max_examples=60, deadline=None)
@given(_values)
def test_fraction_exactness_survives(value):
    """Spot the lossy-float failure mode directly: any Fraction inside
    the structure must come back as the same exact rational."""

    def fractions_in(item):
        if isinstance(item, Fraction):
            yield item
        elif isinstance(item, (list, tuple, set, frozenset)):
            for child in item:
                yield from fractions_in(child)
        elif isinstance(item, dict):
            for key, child in item.items():
                yield from fractions_in(key)
                yield from fractions_in(child)

    decoded = decode_value(encode_value(value))
    assert sorted(map(repr, fractions_in(decoded))) == sorted(
        map(repr, fractions_in(value))
    )
