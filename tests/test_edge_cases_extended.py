"""Degenerate-input sweep over the newer public APIs.

The original edge-case suite covers the core packing functions; this
file pushes the same degenerate inputs (singletons, two-node graphs,
complete graphs, stars) through the baselines, the coding app, the
upcast primitive, and the workload generators, pinning the intended
behavior — a helpful error, not a wrong answer.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.workloads import balanced_workload, uniform_workload
from repro.apps.network_coding import rlnc_gossip
from repro.baselines.greedy_cds import greedy_connected_dominating_set
from repro.baselines.maxflow import FlowNetwork
from repro.baselines.mincut import edge_connectivity_exact, stoer_wagner_min_cut
from repro.baselines.tree_packing_exact import (
    edge_disjoint_spanning_forests,
    spanning_tree_packing_number,
)
from repro.baselines.vertex_connectivity_exact import (
    even_tarjan_vertex_connectivity,
)
from repro.errors import GraphValidationError
from repro.simulator.algorithms.pipelined_upcast import pipelined_upcast
from repro.simulator.network import Network


def _singleton():
    graph = nx.Graph()
    graph.add_node("only")
    return graph


def _two_nodes():
    return nx.path_graph(2)


class TestSingletonGraph:
    def test_vertex_connectivity_zero(self):
        assert even_tarjan_vertex_connectivity(_singleton()) == (0, None)

    def test_edge_connectivity_zero(self):
        assert edge_connectivity_exact(_singleton()) == 0

    def test_stoer_wagner_rejects(self):
        with pytest.raises(GraphValidationError):
            stoer_wagner_min_cut(_singleton())

    def test_packing_number_zero(self):
        assert spanning_tree_packing_number(_singleton()) == 0

    def test_forest_union_is_empty(self):
        (forest,) = edge_disjoint_spanning_forests(_singleton(), 1)
        assert forest.number_of_edges() == 0
        assert forest.number_of_nodes() == 1

    def test_greedy_cds_is_the_node(self):
        assert greedy_connected_dominating_set(_singleton()) == {"only"}

    def test_rlnc_single_node_single_message(self):
        out = rlnc_gossip(_singleton(), {0: "only"}, rng=1)
        assert out.slots == 0 or out.slots >= 0  # no neighbors to serve
        assert out.n_messages == 1

    def test_upcast_trivial(self):
        network = Network(_singleton(), rng=1)
        result = pipelined_upcast(network, {"only": [(0, "x")]})
        assert result.collected == [(0, "x")]
        assert result.tree_depth == 0

    def test_workloads_place_on_the_node(self):
        workload = uniform_workload(_singleton(), 3, rng=1)
        assert set(workload.values()) == {"only"}


class TestTwoNodeGraph:
    def test_connectivities_are_one(self):
        graph = _two_nodes()
        assert even_tarjan_vertex_connectivity(graph)[0] == 1
        assert edge_connectivity_exact(graph) == 1

    def test_stoer_wagner(self):
        value, side = stoer_wagner_min_cut(_two_nodes())
        assert value == 1.0
        assert len(side) == 1

    def test_packing_number_one(self):
        assert spanning_tree_packing_number(_two_nodes()) == 1

    def test_rlnc_completes(self):
        out = rlnc_gossip(_two_nodes(), {0: 0, 1: 1}, rng=2)
        assert out.slots >= 1

    def test_upcast_single_edge(self):
        network = Network(_two_nodes(), rng=1)
        result = pipelined_upcast(network, {1: [(0, "item")]})
        assert result.collected == [(0, "item")]


class TestCompleteGraph:
    def test_even_tarjan_shortcut(self):
        value, cut = even_tarjan_vertex_connectivity(
            nx.complete_graph(8), with_cut=True
        )
        assert value == 7
        assert cut is None

    def test_packing_number_floor_n_over_2(self):
        # K_n packs exactly ⌊n/2⌋ edge-disjoint spanning trees.
        assert spanning_tree_packing_number(nx.complete_graph(8)) == 4
        assert spanning_tree_packing_number(nx.complete_graph(9)) == 4

    def test_balanced_workload_even(self):
        graph = nx.complete_graph(6)
        workload = balanced_workload(graph, 12)
        assert len(workload) == 12


class TestStarGraph:
    """The star is the extreme 1-connected case: one cut vertex."""

    def test_connectivity_one_and_center_cut(self):
        value, cut = even_tarjan_vertex_connectivity(
            nx.star_graph(6), with_cut=True
        )
        assert value == 1
        assert cut == {0}

    def test_single_spanning_tree(self):
        assert spanning_tree_packing_number(nx.star_graph(6)) == 1

    def test_greedy_cds_center_only(self):
        assert greedy_connected_dominating_set(nx.star_graph(6)) == {0}

    def test_rlnc_through_the_center(self):
        graph = nx.star_graph(5)
        out = rlnc_gossip(graph, {i: i for i in range(4)}, rng=3)
        # Leaves only hear the center: every leaf-to-leaf transfer takes
        # two slots, so slots must exceed the message count / degree.
        assert out.slots >= 2


class TestModelViolationSurfaces:
    def test_flow_network_rejects_unknown_sink(self):
        net = FlowNetwork()
        net.add_edge("a", "b", 1)
        with pytest.raises(GraphValidationError):
            net.max_flow("a", "zzz")

    def test_upcast_pipeline_bound_nonnegative(self):
        network = Network(nx.path_graph(3), rng=1)
        result = pipelined_upcast(network, {})
        assert result.pipeline_bound >= 0
        assert result.total_items == 0
