"""GraphSession: cached canonicalization + bit-identity with the free
functions.

Two properties anchor the API layer:

* **construction-once** — one session performs exactly one
  ``IndexedGraph`` canonicalization and one ``CdsIndex`` build across
  the whole estimate → pack → broadcast pipeline;
* **shim equivalence** — under a fixed seed, every session method is
  bit-identical to the legacy free function it fronts (the session only
  shares indices; it never touches an RNG stream).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.api import GraphSession, parse_graph_spec
from repro.core.cds_packing import fractional_cds_packing
from repro.core.integral_packing import (
    integral_cds_packing,
    integral_spanning_packing,
)
from repro.core.spanning_packing import fractional_spanning_tree_packing
from repro.core.vertex_connectivity import approximate_vertex_connectivity
from repro.core.virtual_graph import CdsIndex
from repro.errors import GraphValidationError
from repro.fastgraph import IndexedGraph

SPEC = "harary:4,16"


def _tree_edge_sets(packing):
    return [
        (wt.class_id, wt.weight, frozenset(map(frozenset, wt.tree.edges())))
        for wt in packing.trees
    ]


class TestConstruction:
    def test_from_spec(self):
        session = GraphSession(SPEC)
        assert session.n == 16
        assert session.label == SPEC

    def test_from_graph(self):
        graph = parse_graph_spec(SPEC)
        session = GraphSession(graph)
        assert session.graph is graph
        assert session.label.startswith("<graph ")

    def test_from_edge_list(self):
        session = GraphSession([(0, 1), (1, 2), (2, 0)])
        assert session.n == 3
        assert session.m == 3

    def test_rejects_garbage(self):
        with pytest.raises(GraphValidationError):
            GraphSession(42)

    def test_fingerprint_is_structural(self):
        from_spec = GraphSession(SPEC)
        from_graph = GraphSession(parse_graph_spec(SPEC))
        assert from_spec.fingerprint == from_graph.fingerprint
        other = GraphSession("harary:4,18")
        assert other.fingerprint != from_spec.fingerprint

    def test_envelope_carries_identity(self):
        session = GraphSession(SPEC)
        envelope = session.pack_cds(seed=3)
        assert envelope.task == "pack_cds"
        assert envelope.graph == SPEC
        assert envelope.fingerprint == session.fingerprint
        assert (envelope.n, envelope.m) == (session.n, session.m)
        assert envelope.seed == 3


class TestConstructionHappensOnce:
    """The acceptance-criterion test: estimate → pack → broadcast on one
    session performs exactly one canonicalization of each kind."""

    @pytest.fixture
    def counters(self, monkeypatch):
        counts = {"indexed": 0, "cds_index": 0}
        original_from_networkx = IndexedGraph.from_networkx.__func__
        original_cds_init = CdsIndex.__init__

        def counting_from_networkx(cls, graph):
            counts["indexed"] += 1
            return original_from_networkx(cls, graph)

        def counting_cds_init(self, graph, indexed=None):
            counts["cds_index"] += 1
            return original_cds_init(self, graph, indexed=indexed)

        monkeypatch.setattr(
            IndexedGraph, "from_networkx",
            classmethod(counting_from_networkx),
        )
        monkeypatch.setattr(CdsIndex, "__init__", counting_cds_init)
        return counts

    def test_estimate_pack_broadcast_single_canonicalization(self, counters):
        session = GraphSession(SPEC)
        session.connectivity(seed=3)
        session.pack_cds(seed=3)
        session.broadcast(messages=8, seed=3)
        assert counters["indexed"] == 1
        assert counters["cds_index"] == 1

    def test_spanning_and_integral_reuse_the_index(self, counters):
        session = GraphSession(SPEC)
        session.pack_spanning(seed=5)
        session.pack_integral(kind="spanning", seed=5)
        assert counters["indexed"] == 1

    def test_simulate_reuses_the_index(self, counters):
        session = GraphSession(SPEC)
        session.pack_cds(seed=1)
        session.simulate(program="flood-min", seed=1)
        assert counters["indexed"] == 1

    def test_per_call_path_recanonicalizes(self, counters):
        # The contrast case: three free-function calls, three
        # canonicalizations (what the session exists to avoid).
        graph = parse_graph_spec(SPEC)
        approximate_vertex_connectivity(graph, rng=3)
        fractional_cds_packing(graph, rng=3)
        fractional_spanning_tree_packing(graph, rng=3)
        assert counters["indexed"] == 3


class TestResultCache:
    def test_repeated_call_is_cached(self):
        session = GraphSession(SPEC)
        first = session.pack_cds(seed=3)
        second = session.pack_cds(seed=3)
        assert second == first
        assert second.raw is first.raw  # the construction is shared...
        assert second is not first      # ...the envelope is a copy
        assert session.stats["cache_hits"] == 1

    def test_caller_mutation_cannot_poison_the_cache(self):
        session = GraphSession(SPEC)
        envelope = session.pack_cds(seed=3)
        pristine_size = envelope.payload["size"]
        envelope.payload["size"] = -1.0
        envelope.timings.clear()
        assert session.pack_cds(seed=3).payload["size"] == pristine_size

    def test_connectivity_shares_the_pack_cds_construction(self):
        session = GraphSession(SPEC)
        session.connectivity(seed=3)
        misses_after_estimate = session.stats["cache_misses"]
        envelope = session.pack_cds(seed=3)
        # pack_cds is a new envelope (one miss) but reuses the estimate's
        # underlying construction — its payload matches the free function
        # exactly (asserted in TestShimEquivalence).
        assert session.stats["cache_misses"] == misses_after_estimate + 1
        assert envelope.payload["size"] > 0

    def test_different_seeds_are_distinct(self):
        session = GraphSession(SPEC)
        assert (
            session.pack_cds(seed=3).payload
            != session.pack_cds(seed=4).payload
            or session.pack_cds(seed=3) is not session.pack_cds(seed=4)
        )


class TestShimEquivalence:
    """Session methods == legacy free functions, bit for bit, per seed."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_pack_cds(self, seed):
        session = GraphSession(SPEC)
        envelope = session.pack_cds(seed=seed)
        reference = fractional_cds_packing(parse_graph_spec(SPEC), rng=seed)
        assert _tree_edge_sets(envelope.raw.packing) == _tree_edge_sets(
            reference.packing
        )
        assert envelope.payload["size"] == reference.packing.size
        assert envelope.payload["t_used"] == reference.t_used

    @pytest.mark.parametrize("seed", [0, 5])
    def test_pack_spanning(self, seed):
        session = GraphSession(SPEC)
        envelope = session.pack_spanning(seed=seed)
        reference = fractional_spanning_tree_packing(
            parse_graph_spec(SPEC), rng=seed
        )
        assert _tree_edge_sets(envelope.raw.packing) == _tree_edge_sets(
            reference.packing
        )
        assert envelope.payload["size"] == reference.packing.size

    @pytest.mark.parametrize("seed", [0, 7])
    def test_connectivity(self, seed):
        session = GraphSession(SPEC)
        envelope = session.connectivity(seed=seed)
        reference = approximate_vertex_connectivity(
            parse_graph_spec(SPEC), rng=seed
        )
        assert envelope.payload["lower_bound"] == reference.lower_bound
        assert envelope.payload["upper_bound"] == reference.upper_bound
        assert envelope.payload["estimate"] == reference.estimate
        assert envelope.payload["packing_size"] == reference.packing_size

    def test_pack_integral_cds(self):
        session = GraphSession("fat_cycle:4,4")
        envelope = session.pack_integral(
            kind="cds", class_factor=2.0, seed=17
        )
        reference = integral_cds_packing(
            parse_graph_spec("fat_cycle:4,4"), class_factor=2.0, rng=17
        )
        assert _tree_edge_sets(envelope.raw.packing) == _tree_edge_sets(
            reference.packing
        )

    def test_pack_integral_spanning(self):
        session = GraphSession("harary:6,20")
        envelope = session.pack_integral(kind="spanning", seed=9)
        reference = integral_spanning_packing(
            parse_graph_spec("harary:6,20"), rng=9
        )
        assert _tree_edge_sets(envelope.raw) == _tree_edge_sets(reference)

    def test_broadcast_matches_manual_pipeline(self):
        from repro.apps.broadcast import vertex_broadcast

        session = GraphSession(SPEC)
        envelope = session.broadcast(messages=8, seed=7)
        graph = parse_graph_spec(SPEC)
        packing = fractional_cds_packing(graph, rng=7).packing
        nodes = sorted(graph.nodes(), key=str)
        sources = {i: nodes[i % len(nodes)] for i in range(8)}
        reference = vertex_broadcast(packing, sources, rng=7)
        assert envelope.payload["rounds"] == reference.rounds
        assert envelope.raw.tree_assignment == reference.tree_assignment
        assert envelope.raw.node_transmissions == reference.node_transmissions

    def test_gossip_matches_manual_pipeline(self):
        from repro.apps.gossip import gossip

        session = GraphSession(SPEC)
        envelope = session.gossip(seed=5)
        packing = fractional_cds_packing(parse_graph_spec(SPEC), rng=5).packing
        reference = gossip(packing, rng=5)
        assert envelope.payload["rounds"] == reference.rounds
        assert envelope.payload["reference_rounds"] == (
            reference.reference_rounds
        )

    @pytest.mark.parametrize("program", ["flood-min", "bfs"])
    def test_simulate_matches_standalone_scenario(self, program):
        from repro.simulator.scenario import Scenario

        session = GraphSession(SPEC)
        envelope = session.simulate(program=program, seed=3)
        reference = Scenario(topology=SPEC, program=program, seed=3).run()
        assert envelope.payload["rounds"] == reference.summary()["rounds"]
        assert envelope.payload["messages"] == reference.summary()["messages"]
        assert envelope.raw.result.outputs == reference.result.outputs


class TestValidation:
    def test_bad_transport(self):
        with pytest.raises(GraphValidationError, match="vertex, edge"):
            GraphSession(SPEC).broadcast(transport="pigeon")

    def test_bad_integral_kind(self):
        with pytest.raises(GraphValidationError, match="cds, spanning"):
            GraphSession(SPEC).pack_integral(kind="mystery")

    def test_disconnected_graph_surfaces_core_error(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            GraphSession(graph).pack_cds()

    def test_mismatched_prebuilt_index_rejected(self):
        from repro.simulator.network import Network

        other = IndexedGraph.from_networkx(parse_graph_spec("hypercube:3"))
        graph = parse_graph_spec(SPEC)
        with pytest.raises(GraphValidationError, match="does not match"):
            CdsIndex(graph, indexed=other)
        with pytest.raises(GraphValidationError, match="does not match"):
            Network(graph, rng=0, indexed=other)


class TestModuleLevelShims:
    def test_one_shot_functions(self):
        import repro.api as api

        envelope = api.pack_cds(SPEC, seed=3)
        assert envelope.payload == GraphSession(SPEC).pack_cds(seed=3).payload

    def test_top_level_lazy_exports(self):
        import repro

        assert repro.GraphSession is GraphSession
        assert callable(repro.fractional_cds_packing)
        assert callable(repro.approximate_vertex_connectivity)
        assert "GraphSession" in repro.__all__
        assert "JobSpec" in repro.__all__
        with pytest.raises(AttributeError):
            repro.not_a_real_name
