"""Hypothesis property tests over the core invariants."""

import math
import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cds_packing import construct_cds_packing
from repro.core.spanning_packing import MwuParameters, mwu_spanning_packing
from repro.graphs.connectivity import (
    is_connected_dominating_set,
    vertex_connectivity,
)
from repro.graphs.generators import harary_graph
from repro.graphs.sampling import karger_edge_partition
from repro.graphs.union_find import UnionFind

FAST = MwuParameters(epsilon=0.3, beta_factor=4.0, max_iterations=400)

_slow = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_slow
@given(
    k=st.sampled_from([3, 4, 5]),
    n=st.integers(12, 26),
    seed=st.integers(0, 10_000),
)
def test_cds_packing_always_valid(k, n, seed):
    """Whatever the Harary instance and seed, the returned packing is a
    valid fractional dominating tree packing with size <= k."""
    if n <= k:
        n = k + 7
    g = harary_graph(k, n)
    result = construct_cds_packing(g, k, rng=seed)
    result.packing.verify()
    assert result.size <= vertex_connectivity(g) + 1e-9
    for wt in result.packing:
        assert is_connected_dominating_set(g, wt.tree.nodes())


@_slow
@given(
    k=st.sampled_from([4, 5, 6]),
    n=st.integers(12, 22),
    seed=st.integers(0, 10_000),
)
def test_mwu_edge_capacity_invariant(k, n, seed):
    """MWU never exceeds per-edge capacity after normalization, and every
    tree in the collection is a spanning tree."""
    if n <= k:
        n = k + 8
    g = harary_graph(k, n)
    normalized, trace, target = mwu_spanning_packing(g, params=FAST)
    loads = {}
    for tree_edges, weight in normalized:
        t = nx.Graph()
        t.add_nodes_from(g.nodes())
        t.add_edges_from(tuple(e) for e in tree_edges)
        assert nx.is_tree(t)
        for e in tree_edges:
            loads[e] = loads.get(e, 0.0) + weight
    assert max(loads.values()) <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(parts=st.integers(1, 5), seed=st.integers(0, 10_000))
def test_karger_partition_preserves_total_connectivity_bound(parts, seed):
    """Σ_i λ(H_i) <= λ(G) can FAIL in general, but Σ λ_i <= λ always holds
    for the *cut* witnessing λ: every part's connectivity is bounded by
    its share of the global min cut — so the sum never exceeds λ."""
    from repro.graphs.connectivity import edge_connectivity

    g = harary_graph(6, 16)
    lam = edge_connectivity(g)
    subs = karger_edge_partition(g, parts, rng=seed)
    sub_lams = [edge_connectivity(s) for s in subs]
    assert sum(sub_lams) <= lam


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=30
    )
)
def test_union_find_component_count_invariant(ops):
    """n_components + (successful unions) == n, always."""
    uf = UnionFind(range(13))
    successes = 0
    for a, b in ops:
        if uf.union(a, b):
            successes += 1
    assert uf.n_components + successes == 13
