"""Distributed spanning tree packing (Section 5.1 protocol, Lemma 5.1)."""

import networkx as nx
import pytest

from repro.core.spanning_packing import MwuParameters
from repro.core.spanning_packing_distributed import distributed_spanning_packing
from repro.graphs.generators import harary_graph, hypercube

FAST = MwuParameters(epsilon=0.25, beta_factor=3.0)


@pytest.fixture(scope="module")
def dist_result():
    g = harary_graph(5, 20)
    return g, distributed_spanning_packing(
        g, params=FAST, rng=71, max_iterations=20
    )


class TestDistributedSpanning:
    def test_packing_valid(self, dist_result):
        _, result = dist_result
        result.packing.verify()
        assert result.result.size > 0.5

    def test_rounds_accounted(self, dist_result):
        _, result = dist_result
        assert result.report.measured.rounds > 0
        assert result.report.analytic[0].name == "lemma-5.1"
        assert result.report.analytic_total() > 0

    def test_iterations_recorded(self, dist_result):
        _, result = dist_result
        assert result.iterations_per_part
        assert all(i >= 1 for i in result.iterations_per_part)

    def test_edge_load_capacity(self, dist_result):
        _, result = dist_result
        assert result.packing.max_edge_load() <= 1.0 + 1e-9

    def test_matches_centralized_shape(self):
        """Distributed and centralized optimizers reach similar sizes."""
        from repro.core.spanning_packing import fractional_spanning_tree_packing

        g = hypercube(3)
        central = fractional_spanning_tree_packing(g, params=FAST, rng=72)
        dist = distributed_spanning_packing(
            g, params=FAST, rng=72, max_iterations=40
        )
        assert dist.result.size >= 0.5 * central.size
