"""Karger edge partition and vertex sampling (Section 5.2, [12], E12)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphValidationError
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import harary_graph
from repro.graphs.sampling import (
    choose_karger_parts,
    karger_edge_partition,
    partition_vertices,
    sample_vertices,
)


class TestEdgePartition:
    def test_edges_partitioned_exactly(self):
        g = harary_graph(4, 16)
        parts = karger_edge_partition(g, 3, rng=1)
        all_edges = set()
        for p in parts:
            edges = {frozenset(e) for e in p.edges()}
            assert not all_edges & edges, "parts must be edge-disjoint"
            all_edges |= edges
        assert all_edges == {frozenset(e) for e in g.edges()}

    def test_parts_carry_all_nodes(self):
        g = harary_graph(4, 12)
        for p in karger_edge_partition(g, 4, rng=2):
            assert set(p.nodes()) == set(g.nodes())

    def test_single_part_is_copy(self):
        g = harary_graph(4, 12)
        (p,) = karger_edge_partition(g, 1, rng=3)
        assert {frozenset(e) for e in p.edges()} == {
            frozenset(e) for e in g.edges()
        }

    def test_rejects_zero_parts(self):
        with pytest.raises(GraphValidationError):
            karger_edge_partition(nx.cycle_graph(4), 0)

    def test_connectivity_concentration(self):
        """E12's shape: a high-λ graph splits into still-well-connected
        parts (exact concentration needs λ/η ≥ Θ(log n); at this toy
        scale we check the qualitative survival of connectivity)."""
        g = harary_graph(16, 34)
        parts = karger_edge_partition(g, 2, rng=0)
        lams = [edge_connectivity(p) for p in parts]
        assert all(lam >= 2 for lam in lams)
        assert sum(lams) >= 16 // 4


class TestChooseParts:
    def test_small_lambda_single_part(self):
        assert choose_karger_parts(4, 100) == 1

    def test_large_lambda_splits(self):
        eta = choose_karger_parts(10000, 100, epsilon=0.5)
        assert eta > 1
        # λ/η must land in the prescribed window [t, 3t]
        import math

        t = 20.0 * math.log(100) / 0.25
        assert 10000 / eta >= 20.0 * math.log(100) / (0.5**2)

    def test_rejects_bad_lambda(self):
        with pytest.raises(GraphValidationError):
            choose_karger_parts(0, 10)


class TestVertexSampling:
    def test_probability_bounds(self):
        g = nx.complete_graph(30)
        assert sample_vertices(g, 0.0, rng=1) == set()
        assert sample_vertices(g, 1.0, rng=1) == set(g.nodes())

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphValidationError):
            sample_vertices(nx.cycle_graph(3), 1.5)

    def test_partition_vertices_disjoint_cover(self):
        g = nx.complete_graph(20)
        groups = partition_vertices(g, 4, rng=9)
        union = set()
        for grp in groups:
            assert not union & grp
            union |= grp
        assert union == set(g.nodes())


@settings(max_examples=25, deadline=None)
@given(parts=st.integers(1, 6), seed=st.integers(0, 1000))
def test_partition_is_exact_cover_property(parts, seed):
    g = harary_graph(4, 14)
    subs = karger_edge_partition(g, parts, rng=seed)
    total = sum(p.number_of_edges() for p in subs)
    assert total == g.number_of_edges()
