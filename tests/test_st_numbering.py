"""Tests for st-numbering and the Itai–Rodeh independent trees (§1.4.1)."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.st_numbering import (
    itai_rodeh_independent_trees,
    st_numbering,
    verify_independent_pair,
)
from repro.errors import GraphValidationError
from repro.graphs.generators import (
    fat_cycle,
    harary_graph,
    hypercube,
    torus_grid,
)


def _check_numbering(graph, numbering, s, t):
    n = graph.number_of_nodes()
    assert sorted(numbering.values()) == list(range(1, n + 1))
    assert numbering[s] == 1
    assert numbering[t] == n
    for v in graph.nodes():
        if v in (s, t):
            continue
        values = [numbering[u] for u in graph.neighbors(v)]
        assert min(values) < numbering[v] < max(values)


class TestStNumbering:
    def test_cycle(self):
        graph = nx.cycle_graph(7)
        numbering = st_numbering(graph, 0, 1)
        _check_numbering(graph, numbering, 0, 1)

    def test_complete_graph(self):
        graph = nx.complete_graph(6)
        numbering = st_numbering(graph, 2, 5)
        _check_numbering(graph, numbering, 2, 5)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: harary_graph(4, 14),
            lambda: hypercube(4),
            lambda: fat_cycle(3, 5),
            lambda: torus_grid(4, 4),
            lambda: nx.petersen_graph(),
        ],
    )
    def test_families(self, builder):
        graph = builder()
        s = next(iter(graph.nodes()))
        t = next(iter(graph.neighbors(s)))
        _check_numbering(graph, st_numbering(graph, s, t), s, t)

    def test_rejects_non_adjacent_terminals(self):
        graph = nx.cycle_graph(6)
        with pytest.raises(GraphValidationError):
            st_numbering(graph, 0, 3)

    def test_rejects_equal_terminals(self):
        with pytest.raises(GraphValidationError):
            st_numbering(nx.cycle_graph(5), 0, 0)

    def test_rejects_tiny_graph(self):
        with pytest.raises(GraphValidationError):
            st_numbering(nx.path_graph(2), 0, 1)

    def test_rejects_one_connected_graph(self):
        """A path is connected but not 2-connected: the property cannot
        hold and the verifier must catch it."""
        graph = nx.path_graph(5)
        with pytest.raises(GraphValidationError):
            st_numbering(graph, 0, 1)

    def test_rejects_cut_vertex_graph(self):
        graph = nx.Graph()
        # Two triangles sharing vertex 2 (a cut vertex).
        graph.add_edges_from([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        with pytest.raises(GraphValidationError):
            st_numbering(graph, 0, 1)

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 16))
    def test_random_biconnected(self, seed, n):
        rng = random.Random(seed)
        graph = nx.gnp_random_graph(n, 0.5, seed=rng.randint(0, 10**6))
        if not nx.is_connected(graph) or nx.node_connectivity(graph) < 2:
            return
        s = rng.choice(sorted(graph.nodes()))
        t = rng.choice(sorted(graph.neighbors(s)))
        _check_numbering(graph, st_numbering(graph, s, t), s, t)


class TestItaiRodehTrees:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: nx.cycle_graph(8),
            lambda: nx.complete_graph(5),
            lambda: harary_graph(4, 16),
            lambda: hypercube(3),
            lambda: fat_cycle(3, 4),
            lambda: torus_grid(3, 4),
            lambda: nx.petersen_graph(),
        ],
    )
    def test_pair_is_independent(self, builder):
        graph = builder()
        root = next(iter(graph.nodes()))
        down, up = itai_rodeh_independent_trees(graph, root)
        assert verify_independent_pair(graph, root, down, up)

    def test_all_roots_work(self):
        """The theorem is per-root; exercise every root of one graph."""
        graph = harary_graph(4, 10)
        for root in graph.nodes():
            down, up = itai_rodeh_independent_trees(graph, root)
            assert verify_independent_pair(graph, root, down, up)

    def test_trees_are_spanning(self):
        graph = hypercube(4)
        down, up = itai_rodeh_independent_trees(graph, 0)
        assert set(down.nodes()) == set(graph.nodes())
        assert set(up.nodes()) == set(graph.nodes())
        assert nx.is_tree(down)
        assert nx.is_tree(up)

    def test_tree_edges_come_from_graph(self):
        graph = fat_cycle(3, 4)
        down, up = itai_rodeh_independent_trees(graph, 0)
        for tree in (down, up):
            for u, v in tree.edges():
                assert graph.has_edge(u, v)

    def test_rejects_unknown_root(self):
        with pytest.raises(GraphValidationError):
            itai_rodeh_independent_trees(nx.cycle_graph(5), 99)

    def test_rejects_tiny_graph(self):
        with pytest.raises(GraphValidationError):
            itai_rodeh_independent_trees(nx.path_graph(2), 0)

    def test_rejects_non_biconnected(self):
        with pytest.raises(GraphValidationError):
            itai_rodeh_independent_trees(nx.path_graph(6), 0)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000))
    def test_random_biconnected_pairs(self, seed):
        rng = random.Random(seed)
        graph = nx.gnp_random_graph(12, 0.4, seed=rng.randint(0, 10**6))
        if not nx.is_connected(graph) or nx.node_connectivity(graph) < 2:
            return
        root = rng.choice(sorted(graph.nodes()))
        down, up = itai_rodeh_independent_trees(graph, root)
        assert verify_independent_pair(graph, root, down, up)


class TestVerifier:
    def test_rejects_shared_internal_vertex(self):
        """Two copies of the same tree cannot be independent."""
        graph = nx.cycle_graph(6)
        down, _ = itai_rodeh_independent_trees(graph, 0)
        assert not verify_independent_pair(graph, 0, down, down.copy())

    def test_rejects_non_tree(self):
        graph = nx.cycle_graph(6)
        down, up = itai_rodeh_independent_trees(graph, 0)
        broken = up.copy()
        broken.add_edge(2, 5)
        assert not verify_independent_pair(graph, 0, down, broken)

    def test_rejects_non_spanning(self):
        graph = nx.cycle_graph(6)
        down, up = itai_rodeh_independent_trees(graph, 0)
        shrunk = nx.Graph()
        shrunk.add_edges_from(list(up.edges())[:-1])
        assert not verify_independent_pair(graph, 0, down, shrunk)
