"""Sparse connectivity certificates (Thurimella/Nagamochi-Ibaraki substrate)."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import harary_graph, random_regular_connected
from repro.graphs.sparse_certificates import (
    sparse_connectivity_certificate,
    spanning_forest_decomposition,
)


class TestForestDecomposition:
    def test_forests_are_forests(self):
        g = harary_graph(4, 14)
        for f in spanning_forest_decomposition(g, 3):
            assert nx.is_forest(f)

    def test_forests_edge_disjoint(self):
        g = harary_graph(6, 18)
        forests = spanning_forest_decomposition(g, 4)
        seen = set()
        for f in forests:
            edges = {frozenset(e) for e in f.edges()}
            assert not seen & edges
            seen |= edges

    def test_first_forest_spans(self):
        g = harary_graph(4, 14)
        f0 = spanning_forest_decomposition(g, 1)[0]
        assert nx.is_connected(f0)
        assert f0.number_of_edges() == g.number_of_nodes() - 1

    def test_rejects_zero_count(self):
        with pytest.raises(GraphValidationError):
            spanning_forest_decomposition(nx.cycle_graph(4), 0)


class TestCertificate:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_preserves_connectivity_up_to_k(self, k):
        g = random_regular_connected(6, 18, rng=4)
        cert = sparse_connectivity_certificate(g, k)
        assert min(edge_connectivity(cert), k) == min(edge_connectivity(g), k)

    def test_edge_budget(self):
        g = harary_graph(8, 20)
        cert = sparse_connectivity_certificate(g, 3)
        assert cert.number_of_edges() <= 3 * (g.number_of_nodes() - 1)

    def test_subgraph_of_original(self):
        g = harary_graph(4, 12)
        cert = sparse_connectivity_certificate(g, 2)
        for e in cert.edges():
            assert g.has_edge(*e)

    def test_preserves_nodes(self):
        g = harary_graph(4, 12)
        cert = sparse_connectivity_certificate(g, 2)
        assert set(cert.nodes()) == set(g.nodes())
