"""Distributed building blocks: flooding, BFS, convergecast, subgraph
flooding, exchange, multi-key flood, Borůvka MST."""

import networkx as nx
import pytest

from repro.graphs.generators import clique_chain, harary_graph
from repro.simulator.algorithms.bfs import build_bfs_tree
from repro.simulator.algorithms.boruvka import distributed_mst
from repro.simulator.algorithms.convergecast import converge_sum
from repro.simulator.algorithms.exchange import exchange_once
from repro.simulator.algorithms.flooding import elect_leader, flood_extremum
from repro.simulator.algorithms.multikey_flood import multikey_flood
from repro.simulator.algorithms.subgraph_flood import (
    identify_components,
    subgraph_extremum,
)
from repro.simulator.network import Network
from repro.simulator.runner import Model


@pytest.fixture
def cycle_net():
    return Network(nx.cycle_graph(10), rng=5)


class TestFlooding:
    def test_everyone_learns_min(self, cycle_net):
        values = {v: 100 - v for v in cycle_net.nodes}
        result = flood_extremum(cycle_net, values, minimize=True)
        assert all(result.outputs[v] == 91 for v in cycle_net.nodes)

    def test_everyone_learns_max(self, cycle_net):
        values = {v: v * 3 for v in cycle_net.nodes}
        result = flood_extremum(cycle_net, values, minimize=False)
        assert all(result.outputs[v] == 27 for v in cycle_net.nodes)

    def test_rounds_about_diameter(self, cycle_net):
        values = {v: v for v in cycle_net.nodes}
        result = flood_extremum(cycle_net, values)
        assert result.metrics.rounds <= cycle_net.diameter() + 3

    def test_leader_unique_and_agreed(self, cycle_net):
        leader, result = elect_leader(cycle_net)
        winning = cycle_net.node_id(leader)
        assert all(result.outputs[v] == winning for v in cycle_net.nodes)
        assert winning == max(cycle_net.node_id(v) for v in cycle_net.nodes)


class TestBfs:
    def test_distances_match_networkx(self):
        g = harary_graph(4, 18)
        net = Network(g, rng=1)
        tree, _ = build_bfs_tree(net, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        assert tree.distance == expected

    def test_parents_consistent(self):
        g = clique_chain(3, 5)
        net = Network(g, rng=2)
        tree, _ = build_bfs_tree(net, 0)
        for v, parent in tree.parent.items():
            if parent is None:
                assert v == 0
            else:
                assert g.has_edge(v, parent)
                assert tree.distance[v] == tree.distance[parent] + 1

    def test_children_inverse_of_parent(self):
        g = nx.cycle_graph(7)
        net = Network(g, rng=3)
        tree, _ = build_bfs_tree(net, 0)
        kids = tree.children()
        count = sum(len(c) for c in kids.values())
        assert count == 6  # everyone but the root is someone's child


class TestConvergecast:
    def test_sum_over_tree(self):
        g = harary_graph(4, 14)
        net = Network(g, rng=4)
        tree, _ = build_bfs_tree(net, 0)
        total, _ = converge_sum(net, tree, {v: v for v in net.nodes})
        assert total == sum(range(14))

    def test_counting_nodes(self):
        g = nx.cycle_graph(9)
        net = Network(g, rng=5)
        tree, _ = build_bfs_tree(net, 3)
        total, _ = converge_sum(net, tree, {v: 1 for v in net.nodes})
        assert total == 9


class TestExchange:
    def test_hears_exactly_neighbors(self):
        g = nx.path_graph(4)
        net = Network(g, rng=6)
        heard, _ = exchange_once(net, {v: v * 10 for v in net.nodes})
        assert heard[0] == {1: 10}
        assert heard[1] == {0: 0, 2: 20}

    def test_silent_nodes_not_heard(self):
        g = nx.path_graph(3)
        net = Network(g, rng=7)
        heard, _ = exchange_once(net, {0: 5, 1: None, 2: 7})
        assert heard[1] == {0: 5, 2: 7}
        assert heard[0] == {}

    def test_single_round_cost(self):
        g = nx.cycle_graph(5)
        net = Network(g, rng=8)
        _, result = exchange_once(net, {v: 1 for v in net.nodes})
        assert result.metrics.rounds <= 2


class TestSubgraphFlood:
    def test_components_identified(self):
        g = nx.cycle_graph(8)
        net = Network(g, rng=9)
        # subgraph: two arcs {0,1,2} and {4,5,6}
        members = {0, 1, 2, 4, 5, 6}
        adjacency = {
            v: {
                u
                for u in g.neighbors(v)
                if u in members and v in members and abs(u - v) in (1, 7)
                and ((u <= 2 and v <= 2) or (u >= 4 and v >= 4))
            }
            for v in g.nodes()
        }
        comp_of, _ = identify_components(net, members, adjacency)
        assert comp_of[3] is None and comp_of[7] is None
        assert comp_of[0] == comp_of[1] == comp_of[2]
        assert comp_of[4] == comp_of[5] == comp_of[6]
        assert comp_of[0] != comp_of[4]

    def test_extremum_respects_subgraph(self):
        g = nx.path_graph(5)
        net = Network(g, rng=10)
        members = {0, 1, 3, 4}
        adjacency = {0: {1}, 1: {0}, 3: {4}, 4: {3}, 2: set()}
        values = {0: 7, 1: 9, 3: 1, 4: 2, 2: None}
        result = subgraph_extremum(net, members, adjacency, values)
        assert result.outputs[0] == result.outputs[1] == 7
        assert result.outputs[3] == result.outputs[4] == 1
        assert result.outputs[2] is None


class TestMultikeyFlood:
    def test_independent_keys(self):
        g = nx.path_graph(4)
        net = Network(g, rng=11)
        # Key 0 lives on {0,1}; key 1 on {2,3}; key 2 on all nodes.
        values = {
            0: {0: 5, 2: 40},
            1: {0: 3, 2: 41},
            2: {1: 9, 2: 38},
            3: {1: 8, 2: 44},
        }
        allowed = {
            0: {0: {1}, 2: {1}},
            1: {0: {0}, 2: {0, 2}},
            2: {1: {3}, 2: {1, 3}},
            3: {1: {2}, 2: {2}},
        }
        result = multikey_flood(net, values, allowed, minimize=True, keys_bound=2)
        assert result.outputs[0][0] == 3 and result.outputs[1][0] == 3
        assert result.outputs[2][1] == 8 and result.outputs[3][1] == 8
        assert all(result.outputs[v][2] == 38 for v in net.nodes)

    def test_maximize_mode(self):
        g = nx.path_graph(3)
        net = Network(g, rng=12)
        values = {v: {0: v} for v in net.nodes}
        allowed = {
            v: {0: set(g.neighbors(v))} for v in net.nodes
        }
        result = multikey_flood(net, values, allowed, minimize=False)
        assert all(result.outputs[v][0] == 2 for v in net.nodes)


class TestBoruvka:
    def test_mst_weight_matches_networkx(self):
        g = harary_graph(4, 16)
        weights = {
            frozenset(e): (hash(frozenset(e)) % 97) + 1 for e in g.edges()
        }
        for (u, v), w in zip(g.edges(), weights.values()):
            g[u][v]["weight"] = weights[frozenset((u, v))]
        net = Network(g, rng=13)
        result = distributed_mst(
            net, lambda u, v: weights[frozenset((u, v))], model=Model.E_CONGEST
        )
        ours = sum(weights[e] for e in result.edges)
        reference = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_tree(g).edges(data=True)
        )
        assert ours == reference

    def test_result_is_spanning_tree(self):
        g = clique_chain(3, 6)
        net = Network(g, rng=14)
        result = distributed_mst(net, lambda u, v: 1.0)
        t = nx.Graph()
        t.add_nodes_from(g.nodes())
        t.add_edges_from(tuple(e) for e in result.edges)
        assert nx.is_tree(t)

    def test_analytic_report_attached(self):
        g = nx.cycle_graph(8)
        net = Network(g, rng=15)
        result = distributed_mst(net, lambda u, v: 1.0)
        assert result.report.analytic[0].name == "kutten-peleg-mst"
        assert result.report.analytic_total() > 0
