"""Tests for the exact connectivity baselines (Even–Tarjan, Stoer–Wagner)."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.mincut import (
    crossing_edges,
    edge_connectivity_exact,
    stoer_wagner_min_cut,
)
from repro.baselines.vertex_connectivity_exact import (
    even_tarjan_vertex_connectivity,
    local_vertex_connectivity_flow,
)
from repro.errors import GraphValidationError
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    torus_grid,
)

_hyp = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestLocalVertexConnectivity:
    def test_path_graph_has_single_path(self):
        graph = nx.path_graph(6)
        assert local_vertex_connectivity_flow(graph, 0, 5) == 1

    def test_cycle_has_two_paths(self):
        graph = nx.cycle_graph(8)
        assert local_vertex_connectivity_flow(graph, 0, 4) == 2

    def test_complete_graph_adjacent_pair(self):
        graph = nx.complete_graph(6)
        assert local_vertex_connectivity_flow(graph, 0, 1) == 5

    def test_adjacent_pair_in_sparse_graph(self):
        graph = nx.path_graph(4)
        assert local_vertex_connectivity_flow(graph, 1, 2) == 1

    def test_rejects_identical_terminals(self):
        with pytest.raises(GraphValidationError):
            local_vertex_connectivity_flow(nx.path_graph(3), 1, 1)

    def test_rejects_missing_terminal(self):
        with pytest.raises(GraphValidationError):
            local_vertex_connectivity_flow(nx.path_graph(3), 0, 99)

    @_hyp
    @given(seed=st.integers(0, 10_000))
    def test_matches_networkx_local(self, seed):
        rng = random.Random(seed)
        graph = nx.gnp_random_graph(9, 0.5, seed=rng.randint(0, 10**6))
        if not nx.is_connected(graph):
            return
        nodes = sorted(graph.nodes())
        s, t = rng.sample(nodes, 2)
        expected = nx.connectivity.local_node_connectivity(graph, s, t)
        assert local_vertex_connectivity_flow(graph, s, t) == expected


class TestEvenTarjan:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: nx.path_graph(7), 1),
            (lambda: nx.cycle_graph(9), 2),
            (lambda: nx.complete_graph(5), 4),
            (lambda: hypercube(4), 4),
            (lambda: harary_graph(4, 16), 4),
            (lambda: harary_graph(5, 17), 5),
            (lambda: clique_chain(4, 4), 4),
            (lambda: fat_cycle(3, 5), 6),
            (lambda: torus_grid(4, 5), 4),
            (lambda: nx.petersen_graph(), 3),
            (lambda: nx.complete_bipartite_graph(3, 7), 3),
        ],
    )
    def test_known_families(self, builder, expected):
        value, _ = even_tarjan_vertex_connectivity(builder())
        assert value == expected

    def test_disconnected_graph_is_zero(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert even_tarjan_vertex_connectivity(graph) == (0, None)

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert even_tarjan_vertex_connectivity(graph) == (0, None)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            even_tarjan_vertex_connectivity(nx.Graph())

    def test_complete_graph_has_no_cut(self):
        value, cut = even_tarjan_vertex_connectivity(
            nx.complete_graph(6), with_cut=True
        )
        assert value == 5
        assert cut is None

    def test_returned_cut_disconnects(self):
        graph = clique_chain(3, 4)
        value, cut = even_tarjan_vertex_connectivity(graph, with_cut=True)
        assert cut is not None
        assert len(cut) == value
        remainder = graph.copy()
        remainder.remove_nodes_from(cut)
        assert remainder.number_of_nodes() > 0
        assert not nx.is_connected(remainder)

    def test_star_cut_is_center(self):
        graph = nx.star_graph(5)
        value, cut = even_tarjan_vertex_connectivity(graph, with_cut=True)
        assert value == 1
        assert cut == {0}

    @_hyp
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 11))
    def test_matches_networkx_global(self, seed, n):
        graph = nx.gnp_random_graph(n, 0.5, seed=seed)
        if graph.number_of_nodes() and nx.is_connected(graph):
            value, _ = even_tarjan_vertex_connectivity(graph)
            assert value == nx.node_connectivity(graph)


class TestStoerWagner:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: nx.path_graph(6), 1),
            (lambda: nx.cycle_graph(7), 2),
            (lambda: nx.complete_graph(6), 5),
            (lambda: hypercube(3), 3),
            (lambda: harary_graph(4, 14), 4),
            (lambda: torus_grid(4, 4), 4),
            (lambda: nx.petersen_graph(), 3),
        ],
    )
    def test_known_families(self, builder, expected):
        graph = builder()
        value, side = stoer_wagner_min_cut(graph)
        assert int(value) == expected
        assert 0 < len(side) < graph.number_of_nodes()

    def test_cut_side_certifies_value(self):
        graph = clique_chain(4, 5)
        value, side = stoer_wagner_min_cut(graph)
        assert len(crossing_edges(graph, side)) == int(value)

    def test_weighted_cut(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=3.0)
        graph.add_edge("b", "c", weight=1.5)
        graph.add_edge("a", "c", weight=1.0)
        value, side = stoer_wagner_min_cut(graph)
        assert value == pytest.approx(2.5)
        assert side in ({"c"}, {"a", "b"})

    def test_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            stoer_wagner_min_cut(graph)

    def test_rejects_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        with pytest.raises(GraphValidationError):
            stoer_wagner_min_cut(graph)

    def test_rejects_negative_weight(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=-2.0)
        with pytest.raises(GraphValidationError):
            stoer_wagner_min_cut(graph)

    def test_edge_connectivity_exact_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert edge_connectivity_exact(graph) == 0

    @_hyp
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 12))
    def test_matches_networkx_edge_connectivity(self, seed, n):
        graph = nx.gnp_random_graph(n, 0.5, seed=seed)
        if graph.number_of_nodes() and nx.is_connected(graph):
            assert edge_connectivity_exact(graph) == nx.edge_connectivity(graph)

    def test_cut_value_matches_crossing_weight_randomized(self):
        rng = random.Random(7)
        for _ in range(10):
            graph = nx.gnp_random_graph(10, 0.5, seed=rng.randint(0, 10**6))
            if not nx.is_connected(graph):
                continue
            value, side = stoer_wagner_min_cut(graph)
            assert len(crossing_edges(graph, side)) == int(value)
