"""Packing containers and verification (Section 2 definitions)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackingValidationError
from repro.core.tree_packing import (
    DominatingTreePacking,
    SpanningTreePacking,
    WeightedTree,
    spanning_tree_of,
)


def _path_tree(nodes):
    t = nx.Graph()
    t.add_nodes_from(nodes)
    t.add_edges_from(zip(nodes, nodes[1:]))
    return t


class TestWeightedTree:
    def test_weight_range_enforced(self):
        with pytest.raises(PackingValidationError):
            WeightedTree(tree=_path_tree([0, 1]), weight=1.5, class_id=0)
        with pytest.raises(PackingValidationError):
            WeightedTree(tree=_path_tree([0, 1]), weight=-0.1, class_id=0)

    def test_diameter(self):
        wt = WeightedTree(tree=_path_tree([0, 1, 2, 3]), weight=1.0, class_id=0)
        assert wt.diameter() == 3

    def test_singleton_diameter_zero(self):
        t = nx.Graph()
        t.add_node(0)
        assert WeightedTree(tree=t, weight=0.5, class_id=0).diameter() == 0


class TestDominatingPacking:
    def test_verify_accepts_valid(self):
        g = nx.cycle_graph(6)
        trees = [
            WeightedTree(tree=_path_tree([0, 1, 2, 3, 4]), weight=0.5, class_id=0),
            WeightedTree(tree=_path_tree([1, 2, 3, 4, 5]), weight=0.5, class_id=1),
        ]
        packing = DominatingTreePacking(g, trees)
        packing.verify()
        assert packing.size == 1.0

    def test_verify_rejects_overload(self):
        g = nx.cycle_graph(6)
        trees = [
            WeightedTree(tree=_path_tree([0, 1, 2, 3, 4]), weight=0.8, class_id=0),
            WeightedTree(tree=_path_tree([1, 2, 3, 4, 5]), weight=0.8, class_id=1),
        ]
        with pytest.raises(PackingValidationError):
            DominatingTreePacking(g, trees).verify()

    def test_verify_rejects_non_dominating(self):
        g = nx.path_graph(8)
        trees = [WeightedTree(tree=_path_tree([0, 1]), weight=0.5, class_id=0)]
        with pytest.raises(PackingValidationError):
            DominatingTreePacking(g, trees).verify()

    def test_trees_per_node_counts(self):
        g = nx.cycle_graph(5)
        trees = [
            WeightedTree(tree=_path_tree([0, 1, 2, 3]), weight=0.4, class_id=0),
            WeightedTree(tree=_path_tree([2, 3, 4, 0]), weight=0.4, class_id=1),
        ]
        packing = DominatingTreePacking(g, trees)
        counts = packing.trees_per_node()
        assert counts[0] == 2 and counts[1] == 1

    def test_vertex_disjointness_detection(self):
        g = nx.cycle_graph(6)
        a = WeightedTree(tree=_path_tree([0, 1, 2]), weight=1.0, class_id=0)
        b = WeightedTree(tree=_path_tree([3, 4, 5]), weight=1.0, class_id=1)
        assert DominatingTreePacking(g, [a, b]).is_vertex_disjoint()
        c = WeightedTree(tree=_path_tree([2, 3]), weight=1.0, class_id=2)
        assert not DominatingTreePacking(g, [a, b, c]).is_vertex_disjoint()

    def test_max_diameter(self):
        g = nx.cycle_graph(6)
        trees = [
            WeightedTree(tree=_path_tree([0, 1, 2, 3, 4]), weight=0.5, class_id=0)
        ]
        assert DominatingTreePacking(g, trees).max_diameter() == 4


class TestSpanningPacking:
    def test_verify_accepts_valid(self):
        g = nx.complete_graph(4)
        t1 = _path_tree([0, 1, 2, 3])
        t2 = nx.Graph([(0, 2), (2, 1), (1, 3)])
        trees = [
            WeightedTree(tree=t1, weight=0.5, class_id=0),
            WeightedTree(tree=t2, weight=0.5, class_id=1),
        ]
        packing = SpanningTreePacking(g, trees)
        packing.verify()
        assert packing.size == 1.0

    def test_verify_rejects_non_spanning(self):
        g = nx.complete_graph(4)
        trees = [WeightedTree(tree=_path_tree([0, 1, 2]), weight=1.0, class_id=0)]
        with pytest.raises(PackingValidationError):
            SpanningTreePacking(g, trees).verify()

    def test_edge_overload_rejected(self):
        g = nx.complete_graph(4)
        t = _path_tree([0, 1, 2, 3])
        trees = [
            WeightedTree(tree=t, weight=0.7, class_id=0),
            WeightedTree(tree=t.copy(), weight=0.7, class_id=1),
        ]
        with pytest.raises(PackingValidationError):
            SpanningTreePacking(g, trees).verify()

    def test_edge_disjointness_detection(self):
        g = nx.complete_graph(4)
        t1 = _path_tree([0, 1, 2, 3])
        t2 = nx.Graph([(0, 2), (0, 3), (1, 3)])
        packing = SpanningTreePacking(
            g,
            [
                WeightedTree(tree=t1, weight=1.0, class_id=0),
                WeightedTree(tree=t2, weight=1.0, class_id=1),
            ],
        )
        assert packing.is_edge_disjoint()

    def test_trees_per_edge(self):
        g = nx.complete_graph(3)
        t = _path_tree([0, 1, 2])
        packing = SpanningTreePacking(
            g, [WeightedTree(tree=t, weight=1.0, class_id=0)]
        )
        counts = packing.trees_per_edge()
        assert counts[frozenset((0, 1))] == 1
        assert counts[frozenset((0, 2))] == 0


class TestSpanningTreeOf:
    def test_spanning_tree_of_connected_subset(self):
        g = nx.cycle_graph(6)
        t = spanning_tree_of(g, [0, 1, 2, 3])
        assert nx.is_tree(t)
        assert set(t.nodes()) == {0, 1, 2, 3}

    def test_disconnected_subset_rejected(self):
        g = nx.cycle_graph(6)
        with pytest.raises(PackingValidationError):
            spanning_tree_of(g, [0, 3])

    def test_empty_rejected(self):
        g = nx.cycle_graph(4)
        with pytest.raises(PackingValidationError):
            spanning_tree_of(g, [])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_spanning_trees_always_verify(seed):
    """Property: a uniform weight split over BFS trees of random connected
    subsets always verifies as a dominating tree packing when the subsets
    are CDSs (here: whole vertex set, trivially a CDS)."""
    import random

    rand = random.Random(seed)
    g = nx.cycle_graph(rand.randrange(4, 12))
    count = rand.randrange(1, 4)
    trees = [
        WeightedTree(tree=spanning_tree_of(g), weight=1.0 / count, class_id=i)
        for i in range(count)
    ]
    packing = DominatingTreePacking(g, trees)
    packing.verify()
    assert abs(packing.size - 1.0) < 1e-9
