"""Tests for the ``repro`` command-line interface."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.cli import build_parser, main, parse_graph_spec
from repro.errors import GraphValidationError


class TestGraphSpecParsing:
    @pytest.mark.parametrize(
        "spec,nodes",
        [
            ("harary:4,16", 16),
            ("clique_chain:3,4", 12),
            ("hypercube:3", 8),
            ("torus:3,4", 12),
            ("complete:7", 7),
            ("regular:4,10", 10),
            ("regular:4,10,3", 10),
            ("gnp:12,0.5", 12),
        ],
    )
    def test_valid_specs(self, spec, nodes):
        graph = parse_graph_spec(spec)
        assert graph.number_of_nodes() == nodes
        assert nx.is_connected(graph)

    def test_fat_cycle_spec(self):
        graph = parse_graph_spec("fat_cycle:3,5")
        assert graph.number_of_nodes() == 15

    def test_unknown_family_lists_valid_families(self):
        with pytest.raises(GraphValidationError) as excinfo:
            parse_graph_spec("mystery:1,2")
        message = str(excinfo.value)
        assert "unknown graph family 'mystery'" in message
        for family in ("harary", "hypercube", "gnp", "torus"):
            assert family in message

    def test_wrong_arity_names_signature(self):
        with pytest.raises(GraphValidationError) as excinfo:
            parse_graph_spec("harary:4")
        message = str(excinfo.value)
        assert "harary:k,n" in message
        assert "expects 2" in message

    def test_non_integer_argument_names_token(self):
        with pytest.raises(GraphValidationError) as excinfo:
            parse_graph_spec("harary:4,abc")
        message = str(excinfo.value)
        assert "'abc'" in message
        assert "argument 2" in message

    def test_gnp_needs_probability(self):
        with pytest.raises(GraphValidationError):
            parse_graph_spec("gnp:12")

    def test_empty_spec_rejected(self):
        with pytest.raises(GraphValidationError):
            parse_graph_spec("")

    def test_parser_is_the_api_layer_one(self):
        import repro.api

        assert parse_graph_spec is repro.api.parse_graph_spec


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2014" in out
        assert "repro.baselines" in out

    def test_connectivity(self, capsys):
        assert main(["connectivity", "harary:4,12"]) == 0
        out = capsys.readouterr().out
        assert "vertex connectivity k = 4" in out
        assert "edge connectivity   λ = 4" in out

    def test_pack_cds(self, capsys):
        assert main(["pack-cds", "harary:4,16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "packing size" in out
        assert "verification: OK" in out

    def test_pack_cds_verbose_lists_trees(self, capsys):
        assert main(
            ["pack-cds", "harary:4,16", "--seed", "3", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "tree " in out

    def test_pack_spanning(self, capsys):
        assert main(["pack-spanning", "hypercube:3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Tutte bound" in out
        assert "verification: OK" in out

    def test_broadcast(self, capsys):
        assert main(
            ["broadcast", "harary:4,16", "--messages", "8", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_experiments_lists_index(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E7", "E13", "E17", "E19"):
            assert exp_id in out

    def test_report(self, capsys):
        assert main(["report", "harary:4,12", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "# repro measurement report" in out
        assert "| harary:4,12 |" in out

    def test_simulate_flood(self, capsys):
        assert main(
            ["simulate", "harary:4,16", "--program", "flood-min", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rounds:" in out
        assert "messages:" in out
        assert "rounds/sec" in out

    def test_simulate_list_programs(self, capsys):
        assert main(["simulate", "--list-programs"]) == 0
        out = capsys.readouterr().out
        assert "flood-min" in out
        assert "clique-min" in out

    def test_simulate_requires_graph(self, capsys):
        assert main(["simulate"]) == 2
        assert "graph spec" in capsys.readouterr().err

    def test_simulate_trace(self, capsys):
        assert main(
            ["simulate", "torus:3,3", "--program", "bfs", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "round  node" in out

    def test_simulate_clique_model(self, capsys):
        assert main(
            ["simulate", "harary:4,12", "--program", "clique-min"]
        ) == 0
        out = capsys.readouterr().out
        assert "congested-clique" in out
        assert "rounds:   1" in out

    def test_simulate_with_faults(self, capsys):
        assert main(
            [
                "simulate", "harary:4,16",
                "--program", "retransmit-flood",
                "--drop", "0.2", "--crash", "0:2", "--seed", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "rounds:" in out

    def test_simulate_reference_engine_matches(self, capsys):
        assert main(
            ["simulate", "harary:4,12", "--engine", "reference", "--seed", "1"]
        ) == 0
        reference_out = capsys.readouterr().out
        assert main(
            ["simulate", "harary:4,12", "--engine", "indexed", "--seed", "1"]
        ) == 0
        indexed_out = capsys.readouterr().out
        # Identical protocol facts; only engine label and wall time differ.
        ref_facts = [l for l in reference_out.splitlines()
                     if l.startswith(("rounds:", "messages:", "outputs", "  "))]
        idx_facts = [l for l in indexed_out.splitlines()
                     if l.startswith(("rounds:", "messages:", "outputs", "  "))]
        assert ref_facts == idx_facts

    def test_simulate_unknown_engine_lists_registered(self, capsys):
        """A typo'd --engine fails before any graph work, naming every
        registered engine (mirrors the graph-family errors)."""
        assert main(
            ["simulate", "harary:4,12", "--engine", "shraded"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown simulation engine 'shraded'" in err
        for engine in ("indexed", "reference", "sharded"):
            assert engine in err

    def test_simulate_sharded_engine_matches_indexed(self, capsys):
        from sharded_support import SHARDED_SKIP_REASON, SHARDED_TESTS_OK

        if not SHARDED_TESTS_OK:
            pytest.skip(SHARDED_SKIP_REASON)
        assert main(
            ["simulate", "harary:4,12", "--engine", "sharded",
             "--shards", "2", "--seed", "1"]
        ) == 0
        sharded_out = capsys.readouterr().out
        assert main(
            ["simulate", "harary:4,12", "--engine", "indexed", "--seed", "1"]
        ) == 0
        indexed_out = capsys.readouterr().out
        facts = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if line.startswith(("rounds:", "messages:", "outputs", "  "))
        ]
        assert facts(sharded_out) == facts(indexed_out)

    def test_simulate_shards_require_sharded_engine(self, capsys):
        """--shards on a single-process engine would be silently ignored;
        the CLI refuses instead."""
        assert main(
            ["simulate", "harary:4,12", "--shards", "4"]
        ) == 2
        assert "--engine sharded" in capsys.readouterr().err

    def test_simulate_bad_crash_spec(self, capsys):
        assert main(
            ["simulate", "harary:4,12", "--crash", "nonsense"]
        ) == 2
        assert "NODE:ROUND" in capsys.readouterr().err

    def test_error_exit_code(self, capsys):
        assert main(["connectivity", "mystery:1"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestBatchBackendFlags:
    """`repro batch --backend/--workers/--checkpoint/--resume`."""

    @pytest.fixture()
    def jobs_file(self, tmp_path):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({
            "graphs": ["harary:4,12"],
            "tasks": ["connectivity"],
            "trials": 4,
            "base_seed": 0,
        }))
        return path

    def test_backend_flag_reported_in_summary(self, jobs_file, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        assert main([
            "batch", str(jobs_file), "--out", str(out),
            "--backend", "thread", "--workers", "2",
        ]) == 0
        summary = capsys.readouterr().out
        assert "backend=thread" in summary
        assert "workers=2" in summary
        assert len(out.read_text().splitlines()) == 4

    def test_backends_agree_byte_for_byte(self, jobs_file, tmp_path):
        outputs = {}
        for backend in ("serial", "thread", "process"):
            out = tmp_path / f"{backend}.jsonl"
            assert main([
                "batch", str(jobs_file), "--out", str(out),
                "--backend", backend, "--workers", "2",
            ]) == 0
            outputs[backend] = out.read_bytes()
        assert outputs["serial"] == outputs["thread"] == outputs["process"]

    def test_checkpoint_then_resume_replays(self, jobs_file, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        ck = tmp_path / "ck.jsonl"
        assert main([
            "batch", str(jobs_file), "--out", str(out), "--checkpoint", str(ck),
        ]) == 0
        first = out.read_bytes()
        capsys.readouterr()
        assert main([
            "batch", str(jobs_file), "--out", str(out),
            "--checkpoint", str(ck), "--resume",
        ]) == 0
        assert "(4 resumed)" in capsys.readouterr().out
        assert out.read_bytes() == first

    def test_resume_without_checkpoint_is_exit_2(self, jobs_file, tmp_path, capsys):
        code = main([
            "batch", str(jobs_file), "--out", str(tmp_path / "o.jsonl"),
            "--resume",
        ])
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_unknown_backend_is_exit_2(self, jobs_file, tmp_path, capsys):
        code = main([
            "batch", str(jobs_file), "--out", str(tmp_path / "o.jsonl"),
            "--backend", "quantum",
        ])
        assert code == 2
        assert "registered backends" in capsys.readouterr().err
