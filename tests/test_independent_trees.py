"""Vertex independent trees (Section 1.4.1 / Zehavi–Itai)."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.core.independent_trees import (
    attach_leaves,
    independent_trees_from_packing,
    verify_vertex_independent,
)
from repro.core.integral_packing import integral_cds_packing
from repro.core.tree_packing import (
    DominatingTreePacking,
    WeightedTree,
    spanning_tree_of,
)
from repro.graphs.generators import fat_cycle, harary_graph


class TestAttachLeaves:
    def test_attaches_all_nodes(self):
        g = nx.cycle_graph(8)
        tree = nx.path_graph(7)  # dominates the cycle
        spanning = attach_leaves(g, tree)
        assert set(spanning.nodes()) == set(g.nodes())
        assert nx.is_tree(spanning)

    def test_keeps_tree_edges(self):
        g = nx.cycle_graph(6)
        tree = nx.path_graph(5)
        spanning = attach_leaves(g, tree)
        for e in tree.edges():
            assert spanning.has_edge(*e)

    def test_leaf_attachment_uses_graph_edges(self):
        g = nx.cycle_graph(6)
        tree = nx.path_graph(5)
        spanning = attach_leaves(g, tree)
        for e in spanning.edges():
            assert g.has_edge(*e)


class TestIndependentTrees:
    def test_disjoint_packing_yields_independent_trees(self):
        """Two vertex-disjoint dominating triples of K6 become two
        vertex independent spanning trees — verified exactly."""
        g = nx.complete_graph(6)
        arc_a = spanning_tree_of(g, [0, 1, 2])
        arc_b = spanning_tree_of(g, [3, 4, 5])
        packing = DominatingTreePacking(
            g,
            [
                WeightedTree(tree=arc_a, weight=1.0, class_id=0),
                WeightedTree(tree=arc_b, weight=1.0, class_id=1),
            ],
        )
        packing.verify()
        assert packing.is_vertex_disjoint()
        trees = independent_trees_from_packing(packing, root=0)
        assert len(trees) == 2
        assert verify_vertex_independent(g, trees, root=0)

    def test_rejects_overlapping_packing(self):
        g = nx.cycle_graph(6)
        t1 = spanning_tree_of(g, [0, 1, 2, 3])
        t2 = spanning_tree_of(g, [2, 3, 4, 5])
        packing = DominatingTreePacking(
            g,
            [
                WeightedTree(tree=t1, weight=0.5, class_id=0),
                WeightedTree(tree=t2, weight=0.5, class_id=1),
            ],
        )
        with pytest.raises(GraphValidationError):
            independent_trees_from_packing(packing, root=0)

    def test_rejects_foreign_root(self):
        g = nx.cycle_graph(6)
        t = spanning_tree_of(g, [0, 1, 2, 3, 4])
        packing = DominatingTreePacking(
            g, [WeightedTree(tree=t, weight=1.0, class_id=0)]
        )
        with pytest.raises(GraphValidationError):
            independent_trees_from_packing(packing, root=99)

    def test_pipeline_from_integral_packing(self):
        """The full Section 1.4.1 pipeline: integral packing -> vertex
        independent trees, for every root."""
        g = fat_cycle(4, 5)  # k = 8
        result = integral_cds_packing(g, rng=31)
        trees = independent_trees_from_packing(
            result.packing, root=next(iter(g.nodes()))
        )
        assert verify_vertex_independent(g, trees, next(iter(g.nodes())))


class TestVerifier:
    def test_detects_shared_internal(self):
        # Two identical spanning trees share all internal vertices.
        g = harary_graph(4, 10)
        t = spanning_tree_of(g)
        # A path through internals exists unless the tree is a star.
        if max(dict(t.degree()).values()) < 9:
            assert not verify_vertex_independent(g, [t, t.copy()], root=0)

    def test_accepts_single_tree(self):
        g = nx.cycle_graph(5)
        t = spanning_tree_of(g)
        assert verify_vertex_independent(g, [t], root=0)

    def test_rejects_non_spanning_member(self):
        g = nx.cycle_graph(5)
        partial = spanning_tree_of(g, [0, 1, 2])
        assert not verify_vertex_independent(g, [partial], root=0)
