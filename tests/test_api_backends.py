"""Batch backends + checkpoint/resume: registry, chunk planning,
byte-identity across execution planes, the one-graph parallelism fix,
kill-and-resume equivalence, and failure-path taxonomy."""

from __future__ import annotations

import io
import json
import re
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.api import backends, batch
from repro.api.backends import (
    available_backends,
    get_backend,
    make_chunks,
)
from repro.errors import BatchExecutionError, GraphValidationError

MATRIX = {
    "graphs": ["harary:4,12", "hypercube:3"],
    "tasks": ["connectivity"],
    "trials": 4,
}

ONE_GRAPH = {
    "graphs": ["harary:4,12"],
    "tasks": ["connectivity"],
    "trials": 200,
}


def _jsonl(jobs, **kwargs) -> str:
    stream = io.StringIO()
    batch.run(jobs, jsonl=stream, **kwargs)
    return stream.getvalue()


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "process", "thread"} <= set(available_backends())

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(GraphValidationError) as excinfo:
            get_backend("quantum")
        message = str(excinfo.value)
        assert "quantum" in message
        for name in ("serial", "process", "thread"):
            assert name in message

    def test_unknown_backend_through_run(self):
        with pytest.raises(GraphValidationError, match="registered backends"):
            batch.run(MATRIX, backend="quantum")

    def test_invalid_worker_count(self):
        with pytest.raises(GraphValidationError, match=">= 1"):
            batch.run(MATRIX, backend="thread", workers=0)


class TestChunkPlanning:
    def _group(self, graph, count, start=0):
        return [
            (start + i, {"graph": graph, "task": "connectivity"}, i)
            for i in range(count)
        ]

    def test_single_worker_keeps_groups_whole(self):
        groups = {"g": self._group("g", 200)}
        assert len(make_chunks(groups, 1)) == 1

    def test_one_graph_group_splits_across_workers(self):
        # The parallelism-hole fix: one 200-job group, 4 workers.
        groups = {"g": self._group("g", 200)}
        chunks = make_chunks(groups, 4)
        assert len(chunks) == 4
        assert [len(chunk) for chunk in chunks] == [50, 50, 50, 50]
        # consecutive slices: job order inside each chunk is preserved
        flattened = [index for chunk in chunks for index, _, _ in chunk]
        assert flattened == list(range(200))

    def test_small_groups_stay_whole(self):
        # target = ceil(20 / 2) = 10, so neither group needs splitting
        groups = {
            "a": self._group("a", 10),
            "b": self._group("b", 10, start=10),
        }
        chunks = make_chunks(groups, 2)
        assert [len(chunk) for chunk in chunks] == [10, 10]

    def test_groups_are_never_merged(self):
        groups = {
            "a": self._group("a", 1),
            "b": self._group("b", 1, start=1),
        }
        for chunk in make_chunks(groups, 2):
            graphs = {body["graph"] for _, body, _ in chunk}
            assert len(graphs) == 1


class TestBackendEquivalence:
    def test_all_backends_byte_identical(self):
        reference = _jsonl(MATRIX)
        for backend in ("serial", "thread", "process"):
            assert _jsonl(MATRIX, backend=backend, workers=2) == reference, (
                backend
            )

    def test_legacy_processes_maps_to_process_backend(self):
        stats = {}
        _jsonl(MATRIX, processes=2, stats=stats)
        assert stats["backend"] == "process"
        assert stats["workers"] == 2

    def test_serial_default(self):
        stats = {}
        _jsonl(MATRIX, stats=stats)
        assert stats["backend"] == "serial"
        assert stats["workers"] == 1

    def test_single_graph_matrix_uses_multiple_workers(self):
        # The acceptance gate: a 200-job sweep over ONE graph must fan
        # out — previously `len(groups) > 1` kept it on a single worker.
        stats = {}
        rows = _jsonl(ONE_GRAPH, backend="process", workers=2, stats=stats)
        assert len(rows.splitlines()) == 200
        assert stats["chunks"] >= 2
        assert len(stats["worker_pids"]) >= 2
        assert rows == _jsonl(ONE_GRAPH)  # and bytes still match serial

    def test_thread_backend_keeps_raw(self):
        results = batch.run(
            [batch.JobSpec(graph="hypercube:3", task="pack_cds")],
            backend="thread", workers=2,
        )
        assert results[0].raw is not None


class _FailAfter(io.StringIO):
    """A sink that dies after N rows — simulates a killed run."""

    def __init__(self, rows: int) -> None:
        super().__init__()
        self._remaining = rows

    def write(self, text: str) -> int:
        if text == "\n":
            if self._remaining <= 0:
                raise OSError("simulated kill")
            self._remaining -= 1
        return super().write(text)


class TestCheckpointResume:
    def test_fresh_run_writes_manifest(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        reference = _jsonl(MATRIX, checkpoint=str(ck))
        lines = ck.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "repro-batch-checkpoint"
        assert header["jobs"] == len(reference.splitlines())
        assert len(lines) == 1 + header["jobs"]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_killed_run_resumes_byte_identical(self, tmp_path, backend):
        reference = _jsonl(MATRIX)
        ck = tmp_path / "ck.jsonl"
        sink = _FailAfter(3)
        with pytest.raises(OSError, match="simulated kill"):
            batch.run(
                MATRIX, jsonl=sink, checkpoint=str(ck),
                backend=backend, workers=2,
            )
        # the write-ahead manifest holds at least the rows the sink saw
        assert len(ck.read_text().splitlines()) >= 4
        stats = {}
        resumed = _jsonl(
            MATRIX, checkpoint=str(ck), resume=True,
            backend=backend, workers=2, stats=stats,
        )
        assert resumed == reference
        assert stats["resumed"] >= 3

    def test_truncated_trailing_manifest_line_is_dropped(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        reference = _jsonl(MATRIX, checkpoint=str(ck))
        text = ck.read_text()
        lines = text.splitlines(keepends=True)
        # keep header + 2 complete rows, then a kill-truncated partial
        ck.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])
        stats = {}
        resumed = _jsonl(MATRIX, checkpoint=str(ck), resume=True, stats=stats)
        assert resumed == reference
        assert stats["resumed"] == 2

    def test_resume_with_missing_manifest_is_a_fresh_run(self, tmp_path):
        ck = tmp_path / "absent.jsonl"
        stats = {}
        assert _jsonl(
            MATRIX, checkpoint=str(ck), resume=True, stats=stats
        ) == _jsonl(MATRIX)
        assert stats["resumed"] == 0
        assert ck.exists()

    def test_mismatched_jobs_file_rejected(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _jsonl(MATRIX, checkpoint=str(ck))
        with pytest.raises(GraphValidationError, match="does not match"):
            batch.run(
                {**MATRIX, "trials": 5}, checkpoint=str(ck), resume=True
            )

    def test_changed_base_seed_rejected(self, tmp_path):
        # Same job count, different derived seeds → batch digest differs.
        ck = tmp_path / "ck.jsonl"
        _jsonl(MATRIX, checkpoint=str(ck))
        with pytest.raises(GraphValidationError, match="digest mismatch"):
            batch.run(MATRIX, base_seed=999, checkpoint=str(ck), resume=True)

    def test_foreign_file_rejected(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        ck.write_text('{"something": "else"}\n')
        with pytest.raises(GraphValidationError, match="not a repro-batch"):
            batch.run(MATRIX, checkpoint=str(ck), resume=True)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(GraphValidationError, match="checkpoint"):
            batch.run(MATRIX, resume=True)

    def test_checkpoint_refuses_timings(self, tmp_path):
        with pytest.raises(GraphValidationError, match="include_timings"):
            batch.run(
                MATRIX, checkpoint=str(tmp_path / "ck.jsonl"),
                include_timings=True,
            )

    def test_resumed_results_round_trip_as_envelopes(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        fresh = batch.run(MATRIX, checkpoint=str(ck))
        resumed = batch.run(MATRIX, checkpoint=str(ck), resume=True)
        assert [r.canonical_json() for r in resumed] == [
            r.canonical_json() for r in fresh
        ]


class _BrokenPool:
    """Stand-in ProcessPoolExecutor whose workers are already dead."""

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, chunk):
        future = Future()
        future.set_exception(BrokenProcessPool("a worker was killed"))
        return future


class TestFailurePaths:
    def test_worker_crash_surfaces_typed_chained_error(self, monkeypatch):
        monkeypatch.setattr(backends, "ProcessPoolExecutor", _BrokenPool)
        with pytest.raises(BatchExecutionError) as excinfo:
            batch.run(ONE_GRAPH, backend="process", workers=2)
        message = str(excinfo.value)
        assert "harary:4,12" in message  # names the chunk's graph
        assert re.search(r"jobs \d+\.\.\d+", message)  # and its index span
        assert isinstance(excinfo.value.__cause__, BrokenProcessPool)

    def test_one_broken_job_among_many_still_yields_all_rows(self):
        jobs = {
            "graphs": ["mystery:1", "harary:4,12"],
            "tasks": ["connectivity"],
            "trials": 10,
        }
        results = batch.run(jobs, backend="process", workers=2)
        assert len(results) == 20
        broken = [r for r in results if batch.is_error_row(r)]
        assert len(broken) == 10
        assert all(r.graph == "mystery:1" for r in broken)

    def test_error_rows_carry_protocol_taxonomy(self):
        results = batch.run(
            [
                batch.JobSpec(graph="mystery:1"),
                batch.JobSpec(
                    graph="hypercube:3", task="broadcast",
                    params={"messages": "four"},
                ),
                batch.JobSpec(graph="hypercube:3"),
            ]
        )
        graph_error, type_error, success = results
        assert graph_error.payload["status"] == "error"
        assert graph_error.payload["error_type"] == "graph"
        assert graph_error.payload["error_name"] == "GraphValidationError"
        assert "unknown graph family" in graph_error.payload["error"]
        assert type_error.payload["error_type"] == "internal"
        assert type_error.payload["error_name"] == "TypeError"
        assert batch.is_error_row(graph_error)
        assert not batch.is_error_row(success)
        assert "status" not in success.payload

    def test_error_rows_checkpoint_and_resume(self, tmp_path):
        # Error rows are rows: they checkpoint and replay like results.
        jobs = [
            {"graph": "mystery:1"},
            {"graph": "hypercube:3"},
        ]
        ck = tmp_path / "ck.jsonl"
        reference = _jsonl(jobs, checkpoint=str(ck))
        assert _jsonl(jobs, checkpoint=str(ck), resume=True) == reference
