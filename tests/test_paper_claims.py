"""Executable checklist of the paper's claims.

One test per theorem/corollary/lemma with observable content, asserting
the claim's *inequality* end-to-end at reproduction scale. This file is
deliberately readable top-to-bottom as a summary of what the
reproduction establishes; the per-claim details and sweeps live in the
dedicated test modules and benchmarks (DESIGN.md §4).
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graphs.connectivity import (
    edge_connectivity,
    is_dominating_tree,
    is_spanning_tree,
    vertex_connectivity,
)
from repro.graphs.generators import harary_graph

GRAPH = harary_graph(8, 32)  # k = λ = 8, n = 32
K = 8
LAM = 8
N = 32


class TestTheorem11And12:
    """Fractional dominating tree packing of size Ω(k / log n)."""

    def test_packing_exists_is_valid_and_sized(self):
        from repro.core.cds_packing import fractional_cds_packing

        result = fractional_cds_packing(GRAPH, k=K, rng=1)
        packing = result.packing
        packing.verify()
        # Every class is a dominating tree; each node in O(log n) trees;
        # total weight within [c·k/ln n, k].
        for wt in packing.trees:
            assert is_dominating_tree(GRAPH, wt.tree)
        memberships = packing.trees_per_node()
        assert max(memberships.values()) <= 3 * math.ceil(math.log2(N)) + 3
        assert packing.size >= 0.2 * K / math.log(N)
        assert packing.size <= K

    def test_distributed_driver_agrees(self):
        from repro.core.cds_packing_distributed import distributed_cds_packing

        result = distributed_cds_packing(GRAPH, k_guess=K, rng=2)
        result.packing.verify()
        assert result.packing.size > 0


class TestTheorem13:
    """Fractional spanning tree packing of size ⌈(λ−1)/2⌉(1−ε)."""

    def test_packing_reaches_the_tutte_bound(self):
        from repro.core.spanning_packing import fractional_spanning_tree_packing

        packing = fractional_spanning_tree_packing(GRAPH, rng=3).packing
        packing.verify()
        for wt in packing.trees:
            assert is_spanning_tree(GRAPH, wt.tree)
        tutte = math.ceil((LAM - 1) / 2)
        assert packing.size >= (1 - 0.35) * tutte  # (1 − ε) with slack
        assert packing.max_edge_load() <= 1 + 1e-9


class TestIntegralVariants:
    """§1.2: Ω(k/log²n) disjoint CDSs; Ω(λ/log n) disjoint trees."""

    def test_vertex_disjoint_cds_packing(self):
        from repro.core.integral_packing import integral_cds_packing

        result = integral_cds_packing(harary_graph(12, 24), rng=4)
        assert result.size >= 1
        assert result.packing.is_vertex_disjoint()

    def test_edge_disjoint_spanning_packing(self):
        from repro.core.integral_packing import integral_spanning_packing

        packing = integral_spanning_packing(harary_graph(14, 28), rng=5)
        assert len(packing.trees) >= 1
        assert packing.is_edge_disjoint()


class TestCorollary14Broadcast:
    """Broadcast with throughput Ω(k / log n) messages per round."""

    def test_throughput(self):
        from repro.apps.broadcast import vertex_broadcast
        from repro.core.cds_packing import fractional_cds_packing

        result = fractional_cds_packing(GRAPH, k=K, rng=6)
        sources = {i: i % N for i in range(3 * N)}
        outcome = vertex_broadcast(result.packing, sources, rng=6)
        assert outcome.throughput >= 0.1 * K / math.log(N)


class TestCorollary16ObliviousRouting:
    """O(log n)-competitive vertex congestion; O(1) edge congestion."""

    def test_vertex_congestion(self):
        from repro.apps.oblivious_routing import vertex_congestion_report
        from repro.core.cds_packing import fractional_cds_packing

        result = fractional_cds_packing(GRAPH, k=K, rng=7)
        sources = {i: i % N for i in range(2 * N)}
        report = vertex_congestion_report(result.packing, sources, K, rng=7)
        assert report.competitiveness <= 20 * math.log(N)

    def test_edge_congestion(self):
        from repro.apps.oblivious_routing import edge_congestion_report
        from repro.core.spanning_packing import fractional_spanning_tree_packing

        packing = fractional_spanning_tree_packing(GRAPH, rng=8).packing
        sources = {i: i % N for i in range(2 * N)}
        report = edge_congestion_report(packing, sources, LAM, rng=8)
        assert report.competitiveness <= 30  # O(1) with a generous constant


class TestCorollary17VcApproximation:
    """O(log n) approximation of vertex connectivity, no prior k."""

    def test_interval_contains_k(self):
        from repro.core.vertex_connectivity import (
            approximate_vertex_connectivity,
        )

        estimate = approximate_vertex_connectivity(GRAPH, rng=9)
        assert estimate.contains(K)


class TestCorollaryA1Gossip:
    """Gossip in Õ(η + (N+n)/k) rounds."""

    def test_rounds_within_reference(self):
        from repro.apps.gossip import gossip
        from repro.core.cds_packing import fractional_cds_packing

        result = fractional_cds_packing(GRAPH, k=K, rng=10)
        outcome = gossip(result.packing, n_messages=N, max_per_node=2, rng=10)
        # Õ(·): a polylog factor over the reference is acceptable.
        assert outcome.rounds <= outcome.reference_rounds * math.log(N) ** 2


class TestLemma43ConnectorAbundance:
    """Each non-singleton component has ≥ k disjoint connector paths."""

    def test_paths_count(self):
        from repro.core.connector_paths import count_disjoint_connector_paths

        # Multiples of 8 dominate H(8,32) and induce four singleton
        # components — the N ≥ 2 regime Lemma 4.3 speaks about.
        members = {0, 8, 16, 24}
        counts = count_disjoint_connector_paths(GRAPH, {0}, members)
        assert counts.total >= K


class TestAppendixETester:
    """The CDS-partition tester accepts valid, rejects broken."""

    def test_accept_and_reject(self):
        from repro.core.packing_tester import cds_partition_test_centralized

        # Even/odd halves of H(8,32) are each a CDS (every node has
        # neighbors of both parities among its 8 ring neighbors).
        valid = {v: v % 2 for v in GRAPH.nodes()}
        assert cds_partition_test_centralized(GRAPH, valid, 2).passed
        # Break class 1 by assigning everything except one odd node to
        # class 0: the singleton no longer dominates.
        broken = {v: 0 for v in GRAPH.nodes()}
        broken[1] = 1
        verdict = cds_partition_test_centralized(GRAPH, broken, 2)
        assert not verdict.passed
        assert 1 in verdict.failing_classes


class TestAppendixGLowerBound:
    """Lemma G.4 cut structure + Lemma G.6 2BT simulation budget."""

    def test_cut_dichotomy(self):
        from repro.lowerbounds.construction import build_g_xy

        intersecting = build_g_xy(4, 3, 6, {1, 2}, {2, 4})
        assert vertex_connectivity(intersecting.graph) == 4
        disjoint = build_g_xy(4, 3, 6, {1, 2}, {3, 4})
        assert vertex_connectivity(disjoint.graph) >= 6

    def test_simulation_budget(self):
        from repro.lowerbounds.construction import build_g_xy
        from repro.lowerbounds.disjointness import simulate_protocol_two_party

        def protocol(node, rnd, inbox):
            return ("heard", len(inbox))

        instance = build_g_xy(4, 3, 3, {1}, {1})
        outcome = simulate_protocol_two_party(instance, protocol, rounds=2)
        assert outcome.within_budget


class TestSection141IndependentTrees:
    """Disjoint dominating trees ⇒ independent trees; exact for k=2."""

    def test_itai_rodeh(self):
        from repro.core.st_numbering import (
            itai_rodeh_independent_trees,
            verify_independent_pair,
        )

        down, up = itai_rodeh_independent_trees(GRAPH, 0)
        assert verify_independent_pair(GRAPH, 0, down, up)
