"""Distributed CDS packing (Appendix B / Theorem B.1 driver)."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.core.cds_packing import construct_cds_packing
from repro.core.cds_packing_distributed import distributed_cds_packing
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import clique_chain, harary_graph


@pytest.fixture(scope="module")
def harary_result():
    g = harary_graph(5, 24)
    return g, distributed_cds_packing(g, 5, rng=41)


class TestDistributedConstruction:
    def test_packing_valid(self, harary_result):
        _, result = harary_result
        result.packing.verify()
        assert result.result.size > 0

    def test_round_accounting_present(self, harary_result):
        _, result = harary_result
        assert result.meta_rounds > 0
        assert result.real_round_estimate > result.meta_rounds
        assert result.report.measured.rounds == result.meta_rounds
        assert result.report.analytic[0].name == "thurimella-components"

    def test_phase_breakdown_recorded(self, harary_result):
        _, result = harary_result
        phases = result.report.measured.phase_rounds
        assert "component-identification" in phases
        assert phases["component-identification"] > 0

    def test_output_contract(self, harary_result):
        """Section 2's distributed requirement: for each tree containing a
        node, the node knows the tree's id, weight, and incident edges —
        all of which follows from the class assignment being complete."""
        graph, result = harary_result
        vg = result.result.virtual_graph
        expected = graph.number_of_nodes() * 3 * vg.layers
        assert len(vg.assignment) == expected

    def test_matches_centralized_quality(self):
        """Both drivers achieve comparable packing sizes on the same graph
        (they implement the same algorithm)."""
        g = harary_graph(5, 24)
        central = construct_cds_packing(g, 5, rng=43)
        distributed = distributed_cds_packing(g, 5, rng=43)
        assert distributed.result.size >= 0.3 * central.size

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            distributed_cds_packing(g, 2)

    def test_low_connectivity_graph(self):
        g = clique_chain(3, 4)
        result = distributed_cds_packing(g, 3, rng=44)
        result.packing.verify()

    def test_size_certifies_connectivity(self):
        g = harary_graph(5, 24)
        result = distributed_cds_packing(g, 5, rng=45)
        assert result.result.size <= vertex_connectivity(g) + 1e-9
