"""Tests for the Lemma 5.1 simultaneous-MST composition."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph, hypercube
from repro.graphs.sampling import karger_edge_partition
from repro.simulator.algorithms.shared_mst import simultaneous_msts
from repro.simulator.network import Network


def _forest_graph(nodes, edges):
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(tuple(e) for e in edges)
    return graph


class TestSimultaneousMsts:
    def test_single_subgraph_whole_network(self):
        graph = harary_graph(4, 14)
        network = Network(graph, rng=1)
        result = simultaneous_msts(network, [graph])
        forest = _forest_graph(graph.nodes(), result.forests[0])
        assert nx.is_tree(forest)
        assert set(forest.nodes()) == set(graph.nodes())

    def test_karger_parts_get_spanning_trees(self):
        graph = harary_graph(8, 24)
        network = Network(graph, rng=1)
        parts = karger_edge_partition(graph, 2, rng=3)
        result = simultaneous_msts(network, parts)
        for part, edges in zip(parts, result.forests):
            forest = _forest_graph(graph.nodes(), edges)
            assert nx.is_forest(forest)
            assert nx.number_connected_components(
                forest
            ) == nx.number_connected_components(part)
            for e in edges:
                assert part.has_edge(*tuple(e))

    def test_forests_are_edge_disjoint(self):
        graph = harary_graph(8, 20)
        network = Network(graph, rng=2)
        parts = karger_edge_partition(graph, 2, rng=5)
        result = simultaneous_msts(network, parts)
        seen = set()
        for edges in result.forests:
            assert not (edges & seen)
            seen |= edges

    def test_weighted_mst_matches_networkx(self):
        """With distinct weights the computed tree must be *the* MST."""
        rng = random.Random(7)
        graph = hypercube(4)
        weights = {
            frozenset((u, v)): rng.uniform(1, 100) for u, v in graph.edges()
        }

        def weight_fn(u, v):
            return weights[frozenset((u, v))]

        weighted = graph.copy()
        for u, v in weighted.edges():
            weighted[u][v]["weight"] = weight_fn(u, v)
        expected = {
            frozenset((u, v))
            for u, v in nx.minimum_spanning_tree(weighted).edges()
        }

        network = Network(graph, rng=3)
        result = simultaneous_msts(
            network, [graph], weight_fns=[weight_fn], local_phases=2
        )
        assert result.forests[0] == expected

    def test_weighted_msts_of_two_parts(self):
        rng = random.Random(11)
        graph = harary_graph(6, 18)
        parts = karger_edge_partition(graph, 2, rng=13)
        weights = {
            frozenset((u, v)): rng.uniform(1, 50) for u, v in graph.edges()
        }

        def weight_fn(u, v):
            return weights[frozenset((u, v))]

        network = Network(graph, rng=4)
        result = simultaneous_msts(
            network, parts, weight_fns=[weight_fn, weight_fn]
        )
        for part, edges in zip(parts, result.forests):
            if not nx.is_connected(part):
                continue
            weighted = part.copy()
            for u, v in weighted.edges():
                weighted[u][v]["weight"] = weight_fn(u, v)
            expected = {
                frozenset((u, v))
                for u, v in nx.minimum_spanning_tree(weighted).edges()
            }
            assert edges == expected

    def test_sharing_beats_naive_for_many_parts(self):
        graph = harary_graph(8, 32)
        network = Network(graph, rng=5)
        parts = karger_edge_partition(graph, 4, rng=9)
        result = simultaneous_msts(network, parts)
        assert result.sharing_speedup > 1.5
        assert result.total_rounds == (
            result.fragment_rounds + result.completion_rounds
        )

    def test_more_local_phases_lighten_the_upcast(self):
        graph = harary_graph(6, 30)
        network = Network(graph, rng=6)
        shallow = simultaneous_msts(network, [graph], local_phases=0)
        deep = simultaneous_msts(network, [graph], local_phases=3)
        assert deep.upcast_items < shallow.upcast_items

    def test_disconnected_subgraph_yields_forest(self):
        graph = harary_graph(4, 12)
        part = nx.Graph()
        part.add_nodes_from(graph.nodes())
        some_edges = list(graph.edges())[:5]
        part.add_edges_from(some_edges)
        network = Network(graph, rng=7)
        result = simultaneous_msts(network, [part])
        forest = _forest_graph(graph.nodes(), result.forests[0])
        assert nx.is_forest(forest)
        assert nx.number_connected_components(
            forest
        ) == nx.number_connected_components(part)

    def test_rejects_empty_subgraph_list(self):
        network = Network(nx.path_graph(4), rng=1)
        with pytest.raises(GraphValidationError):
            simultaneous_msts(network, [])

    def test_rejects_overlapping_subgraphs(self):
        graph = nx.cycle_graph(6)
        network = Network(graph, rng=1)
        with pytest.raises(GraphValidationError):
            simultaneous_msts(network, [graph, graph])

    def test_rejects_foreign_edges(self):
        graph = nx.cycle_graph(6)
        foreign = nx.Graph()
        foreign.add_edge(0, 3)  # a chord the cycle does not have
        network = Network(graph, rng=1)
        with pytest.raises(GraphValidationError):
            simultaneous_msts(network, [foreign])

    def test_rejects_mismatched_weight_fns(self):
        graph = nx.cycle_graph(6)
        network = Network(graph, rng=1)
        with pytest.raises(GraphValidationError):
            simultaneous_msts(network, [graph], weight_fns=[])
