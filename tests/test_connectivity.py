"""Connectivity oracles, Menger paths, domination predicates (Section 2)."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.connectivity import (
    edge_connectivity,
    is_connected_dominating_set,
    is_dominating_set,
    is_dominating_tree,
    is_spanning_tree,
    local_vertex_connectivity,
    menger_edge_paths,
    menger_vertex_paths,
    min_vertex_cut,
    vertex_connectivity,
)
from repro.graphs.generators import harary_graph


class TestConnectivityValues:
    def test_cycle(self):
        g = nx.cycle_graph(8)
        assert vertex_connectivity(g) == 2
        assert edge_connectivity(g) == 2

    def test_path_graph(self):
        g = nx.path_graph(5)
        assert vertex_connectivity(g) == 1
        assert edge_connectivity(g) == 1

    def test_complete_graph_convention(self):
        g = nx.complete_graph(6)
        assert vertex_connectivity(g) == 5

    def test_disconnected_is_zero(self):
        g = nx.Graph([(0, 1), (2, 3)])
        assert vertex_connectivity(g) == 0
        assert edge_connectivity(g) == 0

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        assert vertex_connectivity(g) == 0

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            vertex_connectivity(nx.Graph())


class TestCutsAndMenger:
    def test_min_vertex_cut_disconnects(self):
        g = harary_graph(3, 12)
        cut = min_vertex_cut(g)
        assert len(cut) == 3
        h = g.copy()
        h.remove_nodes_from(cut)
        assert not nx.is_connected(h)

    def test_min_cut_of_complete_rejected(self):
        with pytest.raises(GraphValidationError):
            min_vertex_cut(nx.complete_graph(5))

    def test_menger_vertex_paths_count(self):
        g = harary_graph(4, 16)
        # pick a non-adjacent pair
        pairs = [
            (u, v)
            for u in g.nodes()
            for v in g.nodes()
            if u < v and not g.has_edge(u, v)
        ]
        u, v = pairs[0]
        paths = menger_vertex_paths(g, u, v)
        assert len(paths) >= 4
        # internal disjointness
        internals = [set(p[1:-1]) for p in paths]
        for i in range(len(internals)):
            for j in range(i + 1, len(internals)):
                assert not internals[i] & internals[j]

    def test_menger_edge_paths_disjoint(self):
        g = harary_graph(4, 12)
        paths = menger_edge_paths(g, 0, 6)
        assert len(paths) >= 4
        used = set()
        for p in paths:
            for a, b in zip(p, p[1:]):
                e = frozenset((a, b))
                assert e not in used
                used.add(e)

    def test_menger_same_node_rejected(self):
        g = nx.cycle_graph(5)
        with pytest.raises(GraphValidationError):
            menger_vertex_paths(g, 0, 0)

    def test_local_connectivity(self):
        g = nx.cycle_graph(6)
        assert local_vertex_connectivity(g, 0, 3) == 2


class TestDominationPredicates:
    def test_whole_vertex_set_dominates(self):
        g = nx.cycle_graph(6)
        assert is_dominating_set(g, g.nodes())

    def test_every_other_node_dominates_cycle(self):
        g = nx.cycle_graph(6)
        assert is_dominating_set(g, {0, 2, 4})

    def test_non_dominating(self):
        g = nx.path_graph(6)
        assert not is_dominating_set(g, {0})

    def test_cds_requires_connected(self):
        g = nx.cycle_graph(6)
        assert not is_connected_dominating_set(g, {0, 2, 4})
        assert is_connected_dominating_set(g, {0, 1, 2, 3, 4})

    def test_empty_set_not_cds(self):
        g = nx.cycle_graph(4)
        assert not is_connected_dominating_set(g, set())

    def test_foreign_nodes_rejected(self):
        g = nx.cycle_graph(4)
        with pytest.raises(GraphValidationError):
            is_dominating_set(g, {99})


class TestTreePredicates:
    def test_dominating_tree_accepts(self):
        g = nx.cycle_graph(6)
        tree = nx.path_graph(5)  # nodes 0..4 dominate the 6-cycle
        assert is_dominating_tree(g, tree)

    def test_dominating_tree_rejects_cycle(self):
        g = nx.complete_graph(5)
        not_tree = nx.cycle_graph(3)
        assert not is_dominating_tree(g, not_tree)

    def test_dominating_tree_rejects_foreign_edge(self):
        g = nx.cycle_graph(6)
        tree = nx.Graph([(0, 3)])  # not an edge of the cycle
        assert not is_dominating_tree(g, tree)

    def test_spanning_tree_accepts(self):
        g = nx.complete_graph(5)
        t = nx.star_graph(4)
        assert is_spanning_tree(g, t)

    def test_spanning_tree_rejects_partial(self):
        g = nx.complete_graph(5)
        t = nx.path_graph(4)
        assert not is_spanning_tree(g, t)
