"""Shared gating for vectorized-engine tests.

Mirrors ``sharded_support``: the columnar engine needs numpy, which is a
soft dependency — the suite must pass (with clean skips) where numpy is
absent. ``REPRO_VECTORIZED_TESTS=1`` forces the rows on (CI's
engine-equivalence job sets it so a broken numpy install fails loudly
instead of skipping silently); ``REPRO_VECTORIZED_TESTS=0`` forces them
off; otherwise they default on exactly when numpy imports.
"""

from __future__ import annotations

import os

from repro.simulator.runner_vectorized import numpy_available

_FLAG = os.environ.get("REPRO_VECTORIZED_TESTS")

VECTORIZED_TESTS_OK = _FLAG == "1" or (_FLAG != "0" and numpy_available())

VECTORIZED_SKIP_REASON = (
    "vectorized engine tests disabled (numpy missing and "
    "REPRO_VECTORIZED_TESTS not forced on)"
)
