"""Adversarial-channel tests: AdversaryPlan semantics, budget slots,
corruption purity (hypothesis), engine equivalence, and coded defenses."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.coded import (
    ChecksummedFloodProgram,
    TokenGossipProgram,
    VotedFloodProgram,
    token_checksum,
)
from repro.apps.resilience import (
    flood_corruption_sweep,
    gossip_corruption_sweep,
    validate_schedule_edges,
)
from repro.errors import GraphValidationError, SimulationError
from repro.graphs.generators import harary_graph
from repro.simulator.adversary import (
    CORRUPTION_KINDS,
    AdversaryPlan,
    _flip_int,
    _flip_payload,
    _forged_int,
    simulate_with_adversary,
)
from repro.simulator.faults import FaultPlan, RetransmittingFloodProgram
from repro.simulator.message import Message, payload_bits
from repro.simulator.network import Network
from repro.simulator.runner import Model, SyncRunner, engine_context
from repro.simulator.scenario import Scenario

from sharded_support import SHARDED_SKIP_REASON, SHARDED_TESTS_OK


def _msg(payload, sender="s"):
    return Message(sender, payload, payload_bits(payload))


class TestPlanValidation:
    def test_defaults_are_benign(self):
        plan = AdversaryPlan()
        assert not any(
            plan.corrupts("u", "v", r) for r in range(1, 30)
        )
        message = _msg(17)
        assert plan.apply("u", "v", 1, message) is message

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphValidationError):
            AdversaryPlan(corruption_probability=1.5)
        with pytest.raises(GraphValidationError):
            AdversaryPlan(corruption_probability=-0.1)

    def test_rejects_unknown_or_empty_kinds(self):
        with pytest.raises(GraphValidationError):
            AdversaryPlan(kinds=())
        with pytest.raises(GraphValidationError):
            AdversaryPlan(kinds=("flip", "teleport"))

    def test_rejects_negative_budgets(self):
        with pytest.raises(GraphValidationError):
            AdversaryPlan(budget=-1)
        with pytest.raises(GraphValidationError):
            AdversaryPlan(round_budget=-2)

    def test_rejects_malformed_targets(self):
        with pytest.raises(GraphValidationError):
            AdversaryPlan(targets={("a", "b", "c")})

    def test_rejects_bool_rng(self):
        with pytest.raises(GraphValidationError):
            AdversaryPlan(corruption_probability=0.5, rng=True)

    def test_targets_normalized_to_pairs(self):
        plan = AdversaryPlan(
            corruption_probability=1.0, targets=[("a", "b"), ("b", "a")]
        )
        assert plan.targets == frozenset({("a", "b"), ("b", "a")})

    def test_bind_rejects_unknown_target_nodes(self):
        network = Network(nx.path_graph(4), rng=1)
        plan = AdversaryPlan(
            corruption_probability=1.0, targets={(0, 99)}
        )
        with pytest.raises(SimulationError):
            plan.bind(network)

    def test_bind_rejects_non_edge_targets(self):
        network = Network(nx.path_graph(4), rng=1)
        plan = AdversaryPlan(
            corruption_probability=1.0, targets={(0, 3)}
        )
        with pytest.raises(SimulationError):
            plan.bind(network)
        # Under the complete (clique) universe the same pair is fine.
        plan.bind(network, complete=True)

    def test_budgeted_plan_requires_bind(self):
        plan = AdversaryPlan(corruption_probability=1.0, budget=3, rng=0)
        with pytest.raises(SimulationError):
            plan.corrupts("u", "v", 1)

    def test_describe_is_json_clean(self):
        import json

        plan = AdversaryPlan(
            corruption_probability=0.25,
            kinds=("flip", "replay"),
            targets={(0, 1)},
            budget=9,
            round_budget=2,
            rng=13,
        )
        blob = plan.describe()
        assert json.loads(json.dumps(blob)) == blob
        assert blob["seed"] == 13
        assert blob["targets"] == [[0, 1]]


class TestCorruptionDecisions:
    """corrupts()/kind_of()/apply() are pure functions of (seed, directed
    edge, round) — the contract every engine relies on."""

    EDGES = [("a", "b"), ("b", "a"), ("c", "d"), (0, 1), (1, 0), (2, 7)]

    def test_decisions_independent_of_query_order(self):
        forward = AdversaryPlan(corruption_probability=0.5, rng=7)
        backward = AdversaryPlan(corruption_probability=0.5, rng=7)
        queries = [(e, r) for e in self.EDGES for r in range(1, 21)]
        want = {
            (e, r): forward.corrupts(e[0], e[1], r) for e, r in queries
        }
        for e, r in reversed(queries):
            assert backward.corrupts(e[0], e[1], r) == want[(e, r)]

    def test_directedness(self):
        plan = AdversaryPlan(corruption_probability=0.5, rng=11)
        decisions_uv = [plan.corrupts("u", "v", r) for r in range(1, 65)]
        decisions_vu = [plan.corrupts("v", "u", r) for r in range(1, 65)]
        assert decisions_uv != decisions_vu

    def test_corruption_rate_tracks_probability(self):
        plan = AdversaryPlan(corruption_probability=0.25, rng=13)
        decisions = [
            plan.corrupts(u, v, r)
            for u in range(20)
            for v in range(20)
            if u != v
            for r in range(1, 6)
        ]
        rate = sum(decisions) / len(decisions)
        assert 0.2 < rate < 0.3

    def test_kind_drawn_from_declared_kinds_only(self):
        plan = AdversaryPlan(
            corruption_probability=1.0, kinds=("forge", "flip"), rng=5
        )
        kinds = {
            plan.kind_of(u, v, r)
            for u, v in self.EDGES
            for r in range(1, 20)
        }
        assert kinds <= {"forge", "flip"}
        assert len(kinds) == 2  # both kinds actually occur

    def test_reseed_rebinds_decisions(self):
        plan = AdversaryPlan(corruption_probability=0.5, rng=1)
        first = [plan.corrupts("u", "v", r) for r in range(1, 21)]
        plan.reseed(1)
        assert [plan.corrupts("u", "v", r) for r in range(1, 21)] == first
        plan.reseed(2)
        assert [plan.corrupts("u", "v", r) for r in range(1, 21)] != first

    def test_targets_confine_corruption(self):
        plan = AdversaryPlan(
            corruption_probability=1.0, targets={("a", "b")}, rng=3
        )
        assert all(plan.corrupts("a", "b", r) for r in range(1, 10))
        assert not any(plan.corrupts("b", "a", r) for r in range(1, 10))
        assert not any(plan.corrupts("c", "d", r) for r in range(1, 10))


class TestBudgets:
    def _bound_plan(self, **kwargs):
        network = Network(harary_graph(4, 10), rng=1)
        plan = AdversaryPlan(**kwargs)
        plan.bind(network)
        return plan, network

    def _directed_edges(self, network):
        return [
            (u, v) for u in network.nodes for v in network.neighbors(u)
        ]

    def test_round_budget_caps_each_round(self):
        plan, network = self._bound_plan(
            corruption_probability=0.9, round_budget=2, rng=7
        )
        edges = self._directed_edges(network)
        for r in range(1, 15):
            corrupted = [e for e in edges if plan.corrupts(*e, r)]
            assert len(corrupted) <= 2

    def test_global_budget_caps_cumulative_spend(self):
        plan, network = self._bound_plan(
            corruption_probability=0.9, budget=5, rng=7
        )
        edges = self._directed_edges(network)
        total = sum(
            plan.corrupts(*e, r) for r in range(1, 30) for e in edges
        )
        assert total == 5  # p=0.9 on 40 directed edges: budget exhausts

    def test_budget_zero_means_no_corruption(self):
        plan, network = self._bound_plan(
            corruption_probability=1.0, budget=0, rng=7
        )
        edges = self._directed_edges(network)
        assert not any(
            plan.corrupts(*e, r) for r in range(1, 10) for e in edges
        )

    def test_budgeted_slots_are_a_subset_of_unbudgeted(self):
        """Budgets only ever remove corrupted slots, never add or move
        them: a budgeted plan's corruptions are a subset of the same
        seed's unbudgeted corruptions."""
        network = Network(harary_graph(4, 10), rng=1)
        free = AdversaryPlan(corruption_probability=0.4, rng=9)
        capped = AdversaryPlan(
            corruption_probability=0.4, round_budget=3, budget=11, rng=9
        )
        capped.bind(network)
        edges = self._directed_edges(network)
        for r in range(1, 12):
            for e in edges:
                if capped.corrupts(*e, r):
                    assert free.corrupts(*e, r)

    def test_out_of_order_round_queries_agree_with_in_order(self):
        """Slot commitment is sequential internally, but queries may
        arrive round-out-of-order (sharded workers race); answers must
        match an in-order evaluation."""
        network = Network(harary_graph(4, 10), rng=1)
        in_order = AdversaryPlan(
            corruption_probability=0.6, budget=9, rng=4
        ).bind(network)
        shuffled = AdversaryPlan(
            corruption_probability=0.6, budget=9, rng=4
        ).bind(network)
        edges = self._directed_edges(network)
        queries = [(e, r) for r in range(1, 10) for e in edges]
        want = {(e, r): in_order.corrupts(*e, r) for e, r in queries}
        mixed = list(queries)
        random.Random(0).shuffle(mixed)
        for e, r in mixed:
            assert shuffled.corrupts(*e, r) == want[(e, r)]


class TestCorruptionTransforms:
    def test_flip_int_stays_in_honest_width(self):
        for value in (1, 5, 255, -17, 1000, -1, 63, -64):
            width = payload_bits(value)
            for material in range(1, 200):
                flipped = _flip_int(value, material)
                assert flipped != value
                assert payload_bits(flipped) <= width

    def test_flip_of_zero_is_the_documented_exception(self):
        """Zero's 1-bit budget admits no other int; it corrupts to -1."""
        assert all(
            _flip_int(0, material) == -1 for material in range(1, 50)
        )

    def test_flip_can_go_negative(self):
        """The poisoned-minimum attack: some mask flips the sign bit of a
        non-negative value."""
        assert any(
            _flip_int(12, material) < 0 for material in range(1, 64)
        )

    def test_forged_int_never_zero(self):
        assert all(
            _forged_int(material) != 0 for material in range(0, 200_000, 977)
        )

    def test_flip_payload_bool_and_tuple(self):
        assert _flip_payload(True, 3) is False
        corrupted = _flip_payload((4, "x", 9), 5)
        assert isinstance(corrupted, tuple)
        assert corrupted != (4, "x", 9)
        assert corrupted[1] == "x"  # only one int element flipped
        changed = sum(
            a != b for a, b in zip(corrupted, (4, "x", 9))
        )
        assert changed == 1

    def test_flip_payload_without_ints_forges(self):
        assert isinstance(_flip_payload("hello", 9), int)

    def test_apply_forge_uses_declared_payload(self):
        plan = AdversaryPlan(
            corruption_probability=1.0,
            kinds=("forge",),
            forge_payload=-999,
            rng=2,
        )
        out = plan.apply("u", "v", 1, _msg(42))
        assert out.payload == -999
        assert out.bits == payload_bits(-999)
        assert out.sender == "s"  # sender identity is not forged

    def test_apply_replay_delivers_stale_payload(self):
        plan = AdversaryPlan(
            corruption_probability=1.0, kinds=("replay",), rng=0
        )
        first = plan.apply("u", "v", 1, _msg(10))
        # Round 1 has no history: replay falls back to a flip.
        assert first.payload != 10
        second = plan.apply("u", "v", 2, _msg(20))
        assert second.payload == 10  # the round-1 honest payload
        third = plan.apply("u", "v", 3, _msg(30))
        assert third.payload == 20

    def test_replay_history_is_per_directed_edge(self):
        plan = AdversaryPlan(
            corruption_probability=1.0, kinds=("replay",), rng=0
        )
        plan.apply("u", "v", 1, _msg(10))
        out = plan.apply("v", "u", 2, _msg(20))
        assert out.payload != 10  # the reverse edge has its own history

    def test_begin_run_clears_replay_history(self):
        plan = AdversaryPlan(
            corruption_probability=1.0, kinds=("replay",), rng=0
        )
        plan.apply("u", "v", 1, _msg(10))
        plan.begin_run()
        out = plan.apply("u", "v", 2, _msg(20))
        assert out.payload != 10  # history gone: falls back to flip

    def test_uncorrupted_delivery_passes_through_unchanged(self):
        plan = AdversaryPlan(corruption_probability=0.0, rng=1)
        message = _msg((3, 4))
        assert plan.apply("u", "v", 5, message) is message


class TestCorruptionPurityProperties:
    """Hypothesis pins the purity contract over arbitrary edge/round
    universes: decisions never depend on query order, plan object
    identity, or anything but the bound seed."""

    edges = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=30),
        ).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=12,
        unique=True,
    )

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        edges=edges,
        seed=st.integers(min_value=0, max_value=2**32),
        order=st.randoms(use_true_random=False),
    )
    def test_decisions_invariant_under_delivery_order(
        self, edges, seed, order
    ):
        baseline = AdversaryPlan(corruption_probability=0.5, rng=seed)
        probe = AdversaryPlan(corruption_probability=0.5, rng=seed)
        queries = [(e, r) for e in edges for r in range(1, 9)]
        want = {
            (e, r): (
                baseline.corrupts(e[0], e[1], r),
                baseline.kind_of(e[0], e[1], r),
            )
            for e, r in queries
        }
        order.shuffle(queries)
        for e, r in queries:
            got = (
                probe.corrupts(e[0], e[1], r),
                probe.kind_of(e[0], e[1], r),
            )
            assert got == want[(e, r)]

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        kinds=st.sets(
            st.sampled_from(CORRUPTION_KINDS), min_size=1
        ),
    )
    def test_reseed_same_int_restores_decisions(self, seed, kinds):
        plan = AdversaryPlan(
            corruption_probability=0.5, kinds=tuple(sorted(kinds)), rng=seed
        )
        queries = [("u", "v", r) for r in range(1, 17)] + [
            ("v", "w", r) for r in range(1, 17)
        ]
        first = [
            (plan.corrupts(*q), plan.kind_of(*q)) for q in queries
        ]
        plan.reseed(seed)
        assert [
            (plan.corrupts(*q), plan.kind_of(*q)) for q in queries
        ] == first

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        payload=st.one_of(
            # Zero is excluded: its 1-bit budget admits no other int
            # (the documented exception to the width guarantee).
            st.integers(min_value=-(2**20), max_value=2**20).filter(
                lambda v: v != 0
            ),
            st.booleans(),
            st.tuples(
                st.integers(min_value=1, max_value=2**16),
                st.integers(min_value=1, max_value=2**16),
            ),
        ),
    )
    def test_flip_corruption_changes_payload_within_budget(
        self, seed, payload
    ):
        plan = AdversaryPlan(
            corruption_probability=1.0, kinds=("flip",), rng=seed
        )
        honest = _msg(payload)
        out = plan.apply("u", "v", 1, honest)
        assert out.payload != payload
        assert out.bits <= honest.bits


class TestPrefixCacheBound:
    def test_edge_prefix_cache_stays_bounded(self):
        from repro.simulator import adversary as adversary_mod

        plan = AdversaryPlan(corruption_probability=0.5, rng=1)
        cap = adversary_mod._EDGE_PREFIX_CACHE_MAX
        old = adversary_mod._EDGE_PREFIX_CACHE_MAX
        adversary_mod._EDGE_PREFIX_CACHE_MAX = 64
        try:
            # The module constant is read at call time, so shrinking it
            # makes the overflow cheap to exercise.
            for u in range(40):
                for v in range(5):
                    plan.corrupts(u, ("sink", v), 1)
            assert len(plan._edge_prefixes) <= 64
        finally:
            adversary_mod._EDGE_PREFIX_CACHE_MAX = old
        assert cap == old
        # Decisions are unchanged by cache eviction.
        fresh = AdversaryPlan(corruption_probability=0.5, rng=1)
        assert plan.corrupts(3, ("sink", 2), 1) == fresh.corrupts(
            3, ("sink", 2), 1
        )


class TestEngineEquivalence:
    """The same seeded hostile run is bit-identical on every engine."""

    def _run(self, engine, kinds, shards=None, budget=None):
        network = Network(harary_graph(4, 12), rng=2)
        plan = AdversaryPlan(
            corruption_probability=0.3,
            kinds=kinds,
            budget=budget,
            rng=17,
        )
        kwargs = {}
        if shards is not None:
            kwargs["shards"] = shards
        runner = SyncRunner(
            network,
            model=Model.V_CONGEST,
            rng=5,
            adversary_plan=plan,
            engine=engine,
            **kwargs,
        )
        result = runner.run(
            lambda v: RetransmittingFloodProgram(
                network.node_id(v), horizon=16
            ),
            max_rounds=64,
        )
        return (
            {repr(k): v for k, v in result.outputs.items()},
            result.halted,
            result.metrics.messages,
            result.metrics.bits,
        )

    @pytest.mark.parametrize(
        "kinds", [("flip",), ("flip", "forge", "replay")]
    )
    def test_indexed_matches_reference(self, kinds):
        assert self._run("indexed", kinds) == self._run("reference", kinds)

    @pytest.mark.skipif(not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON)
    @pytest.mark.parametrize(
        "kinds", [("flip",), ("flip", "forge", "replay")]
    )
    def test_sharded_matches_indexed(self, kinds):
        assert self._run("indexed", kinds) == self._run(
            "sharded", kinds, shards=3
        )

    @pytest.mark.skipif(not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON)
    def test_budgeted_plan_agrees_across_engines(self):
        want = self._run("indexed", ("flip",), budget=7)
        assert self._run("reference", ("flip",), budget=7) == want
        assert self._run("sharded", ("flip",), shards=3, budget=7) == want

    def test_corruption_actually_changes_the_run(self):
        corrupted = self._run("indexed", ("flip",))
        network = Network(harary_graph(4, 12), rng=2)
        clean = SyncRunner(network, model=Model.V_CONGEST, rng=5).run(
            lambda v: RetransmittingFloodProgram(
                network.node_id(v), horizon=16
            ),
            max_rounds=64,
        )
        assert corrupted[0] != {
            repr(k): v for k, v in clean.outputs.items()
        }

    def test_metrics_charge_honest_bits(self):
        """The adversary tampers after the sender paid: a corrupted run
        transmits exactly the bits of the same run without corruption
        applied (flood state divergence aside, round 1 is identical)."""
        network = Network(nx.path_graph(3), rng=1)
        plan = AdversaryPlan(
            corruption_probability=1.0, kinds=("flip",), rng=4
        )
        corrupted = simulate_with_adversary(
            network,
            lambda v: RetransmittingFloodProgram(
                network.node_id(v), horizon=1
            ),
            plan,
            max_rounds=8,
        )
        clean = SyncRunner(network, model=Model.V_CONGEST, rng=1).run(
            lambda v: RetransmittingFloodProgram(
                network.node_id(v), horizon=1
            ),
            max_rounds=8,
        )
        assert corrupted.metrics.bits == clean.metrics.bits
        assert corrupted.metrics.messages == clean.metrics.messages

    def test_fault_and_adversary_compose(self):
        """Drops are decided first; the adversary only sees survivors —
        and one run seed reproduces the whole hostile execution."""
        network = Network(harary_graph(4, 10), rng=3)

        def run():
            return simulate_with_adversary(
                network,
                lambda v: RetransmittingFloodProgram(
                    network.node_id(v), horizon=20
                ),
                AdversaryPlan(corruption_probability=0.2),
                fault_plan=FaultPlan(drop_probability=0.2),
                rng=8,
                max_rounds=64,
            )

        first, second = run(), run()
        assert first.outputs == second.outputs
        assert first.metrics.bits == second.metrics.bits


class TestCodedDefenses:
    def _flood(self, factory, rate, seed=0, n=16, kinds=("flip",)):
        graph = harary_graph(4, n)
        network = Network(graph, rng=seed)
        plan = AdversaryPlan(corruption_probability=rate, kinds=kinds)
        return network, simulate_with_adversary(
            network,
            factory(network),
            plan,
            rng=seed,
            max_rounds=256,
        )

    def test_uncoded_flood_poisoned_by_flips(self):
        network, result = self._flood(
            lambda net: lambda v: RetransmittingFloodProgram(
                net.node_id(v), horizon=24
            ),
            rate=0.05,
        )
        true_min = min(network.node_id(v) for v in network.nodes)
        wrong = [
            v
            for v in network.nodes
            if result.output_of(v) < true_min
        ]
        assert wrong  # below-minimum outputs: direct poisoning evidence

    def test_checksummed_flood_survives_flips(self):
        network, result = self._flood(
            lambda net: lambda v: ChecksummedFloodProgram(
                net.node_id(v), horizon=40
            ),
            rate=0.05,
        )
        true_min = min(network.node_id(v) for v in network.nodes)
        assert all(
            result.output_of(v) == true_min for v in network.nodes
        )

    def test_voted_flood_survives_flips(self):
        network, result = self._flood(
            lambda net: lambda v: VotedFloodProgram(
                net.node_id(v), horizon=40, votes=2
            ),
            rate=0.05,
        )
        true_min = min(network.node_id(v) for v in network.nodes)
        assert all(
            result.output_of(v) == true_min for v in network.nodes
        )

    def test_coded_floods_match_uncoded_on_clean_channels(self):
        for factory in (
            lambda net: lambda v: ChecksummedFloodProgram(
                net.node_id(v), horizon=24
            ),
            lambda net: lambda v: VotedFloodProgram(
                net.node_id(v), horizon=24, votes=2
            ),
        ):
            network, result = self._flood(factory, rate=0.0)
            true_min = min(network.node_id(v) for v in network.nodes)
            assert all(
                result.output_of(v) == true_min
                for v in network.nodes
            )

    def test_checksum_is_deterministic_and_sized(self):
        assert token_checksum(42) == token_checksum(42)
        assert token_checksum(42) != token_checksum(43)
        assert 0 <= token_checksum(42, bits=8) < 256
        with pytest.raises(GraphValidationError):
            token_checksum(1, bits=0)

    def test_gossip_checksum_survives_corruption(self):
        graph = harary_graph(4, 8)
        network = Network(graph, rng=1)
        n = network.n
        diameter = 3  # >= actual diameter of harary(4,8)
        plan = AdversaryPlan(corruption_probability=0.03)
        result = simulate_with_adversary(
            network,
            lambda v: TokenGossipProgram(
                origin=network.node_id(v),
                value=network.node_id(v),
                horizon=n * (diameter + 1) + 4,
                variant="checksum",
            ),
            plan,
            rng=2,
            max_rounds=n * (diameter + 1) + 8,
        )
        # The program reports committed (origin, value) pairs in its
        # canonical repr order.
        want = tuple(
            sorted(
                (
                    (network.node_id(v), network.node_id(v))
                    for v in network.nodes
                ),
                key=repr,
            )
        )
        assert all(
            result.output_of(v) == want for v in network.nodes
        )


class TestCorruptionSweeps:
    def test_flood_sweep_separates_coded_from_uncoded(self):
        graph = harary_graph(4, 12)
        reports = flood_corruption_sweep(graph, [0.0, 0.05], seed=3)
        by_key = {
            (r.variant, r.corruption_rate): r for r in reports
        }
        assert by_key[("uncoded", 0.0)].coverage == 1.0
        assert by_key[("uncoded", 0.05)].wrong_rate > 0.0
        for variant in ("checksum", "vote"):
            assert by_key[(variant, 0.05)].coverage == 1.0
            assert by_key[(variant, 0.05)].wrong_rate == 0.0

    def test_gossip_sweep_reports_are_complete(self):
        graph = harary_graph(4, 8)
        reports = gossip_corruption_sweep(
            graph, [0.0], variants=("plain", "checksum"), seed=1
        )
        assert {r.variant for r in reports} == {"plain", "checksum"}
        for r in reports:
            assert r.coverage == 1.0
            assert r.wrong_rate == 0.0

    def test_sweep_rejects_bad_rate(self):
        with pytest.raises(GraphValidationError):
            flood_corruption_sweep(harary_graph(4, 8), [0.5, 1.5])

    def test_sweep_rejects_unknown_variant(self):
        with pytest.raises(GraphValidationError):
            flood_corruption_sweep(
                harary_graph(4, 8), [0.0], variants=("uncoded", "magic")
            )


class TestScheduleEdgeValidation:
    def test_schedule_on_non_edge_rejected(self):
        graph = nx.path_graph(4)
        with pytest.raises(GraphValidationError) as excinfo:
            validate_schedule_edges(graph, {(0, 3): frozenset({1})})
        assert "non-edges" in str(excinfo.value)

    def test_schedule_on_unknown_node_rejected(self):
        graph = nx.path_graph(4)
        with pytest.raises(GraphValidationError):
            validate_schedule_edges(graph, {(0, 99): frozenset({1})})

    def test_valid_schedule_passes_through(self):
        graph = nx.path_graph(4)
        schedule = {(0, 1): frozenset({1}), (2, 1): frozenset({3})}
        assert validate_schedule_edges(graph, schedule) == schedule

    def test_empty_cut_schedule_rejected(self):
        from repro.apps.resilience import cut_drop_schedule

        graph = nx.path_graph(4)
        with pytest.raises(GraphValidationError):
            cut_drop_schedule(graph, side=[], rounds=[1])


class TestScenarioIntegration:
    def test_scenario_threads_adversary_plan(self):
        clean = Scenario(
            topology="harary:4,12", program="retransmit-flood", seed=3
        ).run()
        hostile = Scenario(
            topology="harary:4,12",
            program="retransmit-flood",
            seed=3,
            adversary_plan=AdversaryPlan(corruption_probability=0.2),
        ).run()
        assert clean.result.outputs != hostile.result.outputs

    def test_scenario_adversary_run_reproducible(self):
        def run():
            return Scenario(
                topology="harary:4,12",
                program="flood-vote",
                seed=5,
                adversary_plan=AdversaryPlan(corruption_probability=0.1),
            ).run()

        first, second = run(), run()
        assert first.result.outputs == second.result.outputs
        assert (
            first.result.metrics.bits == second.result.metrics.bits
        )

    def test_driver_scenarios_reject_external_adversary(self):
        with pytest.raises(GraphValidationError):
            Scenario(
                topology="harary:4,12",
                program="resilience-sweep",
                seed=1,
                adversary_plan=AdversaryPlan(corruption_probability=0.1),
            ).run()

    def test_resilience_sweep_driver_outputs(self):
        run = Scenario(
            topology="harary:4,12", program="resilience-sweep", seed=3
        ).run()
        outputs = run.result.outputs
        assert any(key.startswith("uncoded@") for key in outputs)
        poisoned = outputs["uncoded@p=0.05"]
        assert poisoned["wrong_rate"] > 0.0
        for variant in ("checksum", "vote"):
            clean = outputs[f"{variant}@p=0.05"]
            assert clean["coverage"] == 1.0
            assert clean["wrong_rate"] == 0.0
