"""Unit tests for the sharded engine's machinery.

The differential matrix (``test_engine_equivalence.py``) proves the
engine's bit-identity end to end; this file pins the pieces it is built
from — shard partitioning, worker-count resolution, the trace sink
hook, and the failure paths — most of which need no processes at all
and therefore run on any machine.
"""

from __future__ import annotations

import os

import networkx as nx
import pytest

from repro.errors import ModelViolationError, SimulationError
from repro.graphs.generators import harary_graph
from repro.simulator.network import Network
from repro.simulator.node import NodeProgram
from repro.simulator.runner import (
    ShardedRunner,
    SyncRunner,
    available_engines,
    simulate,
)
from repro.simulator.runner_sharded import (
    MAX_DEFAULT_SHARDS,
    _owner,
    resolve_shards,
    schedulable_cpus,
    shard_bounds,
    shards_context,
)
from repro.simulator.tracing import Tracer, trace_sink
from sharded_support import SHARDED_SKIP_REASON, SHARDED_TESTS_OK
from vectorized_support import VECTORIZED_TESTS_OK

needs_fork = pytest.mark.skipif(
    not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON
)

# The columnar worker loop only engages when numpy is importable (the
# parent falls back to the scalar worker otherwise), so tests that pin
# columnar-only behaviour need both gates.
needs_columnar = pytest.mark.skipif(
    not (SHARDED_TESTS_OK and VECTORIZED_TESTS_OK),
    reason="columnar barrier tests need fork + numpy (and the forced "
    "env gates REPRO_SHARDED_TESTS / REPRO_VECTORIZED_TESTS)",
)


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_goes_to_leading_shards(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_single_shard(self):
        assert shard_bounds(7, 1) == [(0, 7)]

    def test_one_node_per_shard(self):
        assert shard_bounds(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    @pytest.mark.parametrize("n,shards", [(1, 1), (17, 5), (100, 8)])
    def test_bounds_are_contiguous_and_cover(self, n, shards):
        bounds = shard_bounds(n, shards)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in bounds]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_shards_than_nodes(self):
        with pytest.raises(SimulationError):
            shard_bounds(3, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            shard_bounds(3, 0)

    def test_owner_inverts_bounds(self):
        bounds = shard_bounds(17, 5)
        for shard, (lo, hi) in enumerate(bounds):
            for index in range(lo, hi):
                assert _owner(bounds, index) == shard


class TestResolveShards:
    def test_explicit_wins(self):
        assert resolve_shards(3, 100) == 3

    def test_clamped_to_n(self):
        assert resolve_shards(64, 5) == 5

    def test_default_capped(self):
        assert 1 <= resolve_shards(None, 10**6) <= MAX_DEFAULT_SHARDS

    def test_context_overrides_default(self):
        with shards_context(2):
            assert resolve_shards(None, 100) == 2
        # …and restores afterwards.
        assert resolve_shards(None, 10**6) <= MAX_DEFAULT_SHARDS

    def test_explicit_beats_context(self):
        with shards_context(2):
            assert resolve_shards(5, 100) == 5

    def test_context_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            with shards_context(0):
                pass  # pragma: no cover

    def test_runner_rejects_nonpositive_shards(self):
        network = Network(nx.path_graph(4), rng=1)
        with pytest.raises(SimulationError):
            SyncRunner(network, shards=0)


class TestTraceSink:
    def test_wrapped_factory_advertises_its_trace(self):
        tracer = Tracer()
        factory = tracer.wrap(lambda v: NodeProgram())
        assert trace_sink(factory) is tracer.trace

    def test_plain_factory_has_no_sink(self):
        assert trace_sink(lambda v: NodeProgram()) is None


class TestEngineRegistration:
    def test_sharded_is_registered(self):
        assert "sharded" in available_engines()

    def test_sharded_runner_defaults_to_sharded_engine(self):
        network = Network(nx.path_graph(3), rng=1)
        runner = ShardedRunner(network, shards=2)
        assert runner.engine == "sharded"
        assert runner.shards == 2

    def test_sharded_runner_engine_overridable(self):
        # The subclass only *defaults* the engine; an explicit choice
        # (e.g. to diff against the indexed loop) still wins.
        network = Network(nx.path_graph(3), rng=1)
        runner = ShardedRunner(network, shards=2, engine="indexed")
        assert runner.engine == "indexed"


class _Chatter(NodeProgram):
    def on_start(self, ctx):
        return 1

    def on_round(self, ctx, inbox):
        return 1


class _DictInVCongest(NodeProgram):
    def on_start(self, ctx):
        return {ctx.neighbors[0]: 1}


@needs_fork
class TestWorkerFailurePaths:
    def test_model_violation_propagates_with_type(self):
        network = Network(nx.cycle_graph(6), rng=1)
        with pytest.raises(ModelViolationError):
            simulate(
                network, lambda v: _DictInVCongest(),
                engine="sharded", shards=2,
            )

    def test_max_rounds_exceeded_raises(self):
        network = Network(nx.cycle_graph(6), rng=1)
        with pytest.raises(SimulationError, match="did not terminate"):
            simulate(
                network, lambda v: _Chatter(),
                engine="sharded", shards=2, max_rounds=4,
            )

    def test_failed_run_leaves_no_live_workers(self):
        import multiprocessing

        network = Network(nx.cycle_graph(6), rng=1)
        with pytest.raises(SimulationError):
            simulate(
                network, lambda v: _Chatter(),
                engine="sharded", shards=2, max_rounds=4,
            )
        assert not [
            p for p in multiprocessing.active_children() if p.is_alive()
        ]


@needs_fork
class TestShardedRunsEndToEnd:
    def test_session_simulate_sharded(self):
        from repro.api import GraphSession

        session = GraphSession("harary:4,12")
        sharded = session.simulate(
            program="flood-min", seed=3, engine="sharded", shards=2
        )
        indexed = session.simulate(program="flood-min", seed=3)
        assert sharded.payload["engine"] == "sharded"
        assert sharded.params["shards"] == 2
        for key in ("rounds", "messages", "bits", "outputs", "halted"):
            assert sharded.payload[key] == indexed.payload[key]

    def test_shards_exceeding_nodes_clamp(self):
        graph = harary_graph(4, 9)
        network = Network(graph, rng=1)
        from repro.simulator.algorithms.flooding import ExtremumFloodProgram

        result = simulate(
            network,
            lambda v: ExtremumFloodProgram(network.node_id(v)),
            rng=2, engine="sharded", shards=64,
        )
        reference = simulate(
            network,
            lambda v: ExtremumFloodProgram(network.node_id(v)),
            rng=2, engine="indexed",
        )
        assert result.outputs == reference.outputs

    def test_quiescence_disabled_matches_indexed(self):
        graph = harary_graph(4, 10)

        def run(engine, shards=None):
            network = Network(graph, rng=1)
            runner = SyncRunner(
                network, rng=4, engine=engine, shards=shards
            )
            from repro.simulator.faults import RetransmittingFloodProgram

            return runner.run(
                lambda v: RetransmittingFloodProgram(
                    network.node_id(v), horizon=6
                ),
                quiescence_halts=False,
            )

        a, b = run("indexed"), run("sharded", 2)
        assert a.outputs == b.outputs
        assert a.halted == b.halted
        assert a.metrics.rounds == b.metrics.rounds


class TestSchedulableCpus:
    """Worker sizing reads the *schedulable* CPU set, not the host count:
    in a cgroup/affinity-limited container ``os.cpu_count()`` reports
    host logical CPUs and over-forks."""

    def test_affinity_set_wins(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5}, raising=False)
        assert schedulable_cpus() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert schedulable_cpus() == 7

    def test_oserror_falls_back_to_cpu_count(self, monkeypatch):
        def boom(pid):
            raise OSError("no affinity syscall here")

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert schedulable_cpus() == 3

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert schedulable_cpus() == 1

    def test_default_shards_track_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        assert resolve_shards(None, 10**6) == 2


class CountingTok(str):
    """A broadcast token whose pickle crossings are observable.

    ``__reduce__`` keeps the class through the round-trip (so the
    parent's relay pickle is counted on the parent-side class object —
    worker-side increments happen in forked children and stay invisible
    here) and bumps ``pickles`` every time an instance is serialized.
    """

    pickles = 0

    def __reduce__(self):
        type(self).pickles += 1
        return (CountingTok, (str(self),))


class _TokFlood(NodeProgram):
    """Every node broadcasts the *same* token value for three rounds."""

    def on_round(self, ctx, inbox):
        if ctx.round >= 3:
            ctx.halt(sorted(inbox))
            return None
        return CountingTok("tok")

    def on_start(self, ctx):
        return CountingTok("tok")


class _ListBroadcaster(NodeProgram):
    """One source broadcasts a mutable (unhashable) list; receivers
    report the payload value *and* the identity of the object they got."""

    def __init__(self, is_source):
        self.is_source = is_source

    def on_start(self, ctx):
        return [1, 2, 3] if self.is_source else None

    def on_round(self, ctx, inbox):
        if self.is_source:
            ctx.halt("source")
        else:
            (message,) = inbox.values()
            ctx.halt((tuple(message.payload), id(message.payload)))
        return None


class _BoomInRoundTwo(NodeProgram):
    def __init__(self, boom):
        self.boom = boom

    def on_round(self, ctx, inbox):
        if self.boom and ctx.round == 2:
            raise RuntimeError("boom in the second round")
        return 1


@needs_columnar
class TestColumnarBarrier:
    """The columnar export protocol, observed from the outside: payload
    dedup across the barrier, aliasing of uninterned payloads, and the
    chained remote-failure report."""

    def test_duplicate_payload_pickled_once_per_shard_pair(self):
        """Eight nodes broadcast one equal token for four rounds — 32
        sends — yet the parent relays exactly one pickled payload per
        (source shard → destination shard) pair: the interner-sync delta
        carries it once and every later round ships bare payload ids."""
        indexed = simulate(
            Network(nx.cycle_graph(8), rng=1),
            lambda v: _TokFlood(),
            engine="indexed",
        )
        CountingTok.pickles = 0
        sharded = simulate(
            Network(nx.cycle_graph(8), rng=1),
            lambda v: _TokFlood(),
            engine="sharded",
            shards=2,
        )
        assert list(sharded.outputs.items()) == list(indexed.outputs.items())
        assert sharded.halted == indexed.halted
        assert CountingTok.pickles == 2

    def test_unhashable_payload_aliases_within_each_shard(self):
        """A mutable list cannot be interned, so it ships uninterned in
        the raws column — but each destination shard materializes it
        once and every local receiver aliases that one object, matching
        the single-process engines' aliasing semantics shard-locally."""
        network = Network(nx.complete_graph(6), rng=1)
        source = network.nodes[0]
        result = simulate(
            network,
            lambda v: _ListBroadcaster(v == source),
            engine="sharded",
            shards=2,
        )
        values = {v: out for v, out in result.outputs.items() if v != source}
        assert all(payload == (1, 2, 3) for payload, _ in values.values())
        # shard 0 owns indices 0-2, shard 1 owns 3-5; receivers within a
        # shard see the *same* payload object (ids across shards live in
        # different address spaces and are not comparable).
        by_index = {network.index_of(v): ident for v, (_, ident) in values.items()}
        assert by_index[1] == by_index[2]
        assert by_index[3] == by_index[4] == by_index[5]

    def test_worker_crash_chains_remote_traceback(self):
        """A program crash in shard 1 surfaces promptly in the parent as
        the original exception type, chained to a SimulationError that
        names the shard and carries the worker's formatted traceback."""
        network = Network(nx.cycle_graph(6), rng=1)
        boomer = network.nodes[4]  # index 4 → shard 1 of bounds (0,3),(3,6)
        with pytest.raises(RuntimeError, match="boom in the second round") as info:
            simulate(
                network,
                lambda v: _BoomInRoundTwo(v == boomer),
                engine="sharded",
                shards=2,
                max_rounds=10,
            )
        cause = info.value.__cause__
        assert isinstance(cause, SimulationError)
        text = str(cause)
        assert "shard 1" in text
        assert "Traceback (most recent call last)" in text
        assert "boom in the second round" in text
