"""Documentation-vs-tree consistency checks.

DESIGN.md promises a module map, the CLI promises an experiment index,
and the README promises runnable examples; these tests fail whenever
the repository drifts from its own documentation.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestDesignInventory:
    def test_every_source_module_is_documented(self):
        design = _read("DESIGN.md")
        missing = []
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            if path.name == "__init__.py":
                continue
            if path.name not in design:
                missing.append(str(path.relative_to(REPO)))
        assert not missing, f"modules absent from DESIGN.md: {missing}"

    def test_every_documented_module_exists(self):
        design = _read("DESIGN.md")
        for name in re.findall(r"(\w+\.py)\b", design):
            if name == "setup.py" or name.startswith(("bench_", "test_")):
                hits = list(REPO.glob(name)) + list(
                    (REPO / "benchmarks").glob(name)
                ) + list((REPO / "tests").glob(name))
            else:
                hits = list((REPO / "src").rglob(name))
            assert hits, f"DESIGN.md mentions {name} but it does not exist"

    def test_every_benchmark_is_in_the_index(self):
        design = _read("DESIGN.md")
        for path in sorted((REPO / "benchmarks").glob("bench_*.py")):
            assert path.name in design, (
                f"{path.name} missing from the DESIGN.md experiment index"
            )


class TestCliIndex:
    def test_cli_experiments_reference_real_benchmarks(self):
        from repro.cli import _EXPERIMENTS

        for _, bench, _ in _EXPERIMENTS:
            assert (REPO / "benchmarks" / f"{bench}.py").exists(), bench

    def test_cli_index_covers_all_benchmarks(self):
        from repro.cli import _EXPERIMENTS

        indexed = {bench for _, bench, _ in _EXPERIMENTS}
        on_disk = {
            p.stem for p in (REPO / "benchmarks").glob("bench_*.py")
        }
        assert on_disk <= indexed, f"unindexed benches: {on_disk - indexed}"


class TestReadme:
    def test_readme_examples_exist(self):
        readme = _read("README.md")
        for line in readme.splitlines():
            match = re.match(r"python (examples/\S+\.py)", line.strip())
            if match:
                assert (REPO / match.group(1)).exists(), match.group(1)

    def test_all_examples_are_listed_in_readme(self):
        readme = _read("README.md")
        for path in sorted((REPO / "examples").glob("*.py")):
            assert path.name in readme, (
                f"examples/{path.name} not mentioned in README.md"
            )

    def test_version_matches_package(self):
        import repro

        pyproject = _read("pyproject.toml")
        assert f'version = "{repro.__version__}"' in pyproject


class TestExperimentsFile:
    def test_every_experiment_id_has_a_section(self):
        experiments = _read("EXPERIMENTS.md")
        from repro.cli import _EXPERIMENTS

        for exp_id, _, _ in _EXPERIMENTS:
            head = exp_id.split("-")[0].split("–")[0]
            assert head in experiments, f"{exp_id} missing from EXPERIMENTS.md"
