"""Service core, session LRU, shell, daemon lifecycle, and CSV import.

The tentpole contract: the service surface (``ServiceCore.handle``) is
one request dict → one envelope dict, *never* an exception; sessions
stay warm in a fingerprint-keyed LRU, survive ``edge_new``/``edge_rmv``
via incremental re-canonicalization (re-keyed under the new
fingerprint), and a mutated service session answers byte-identically to
a cold one built from the final graph.
"""

from __future__ import annotations

import io
import json
import textwrap
import threading

import pytest

from repro.api import GraphSession, load_adjacency_csv, parse_graph_spec
from repro.api.envelope import Result
from repro.errors import GraphValidationError, ServiceError
from repro.service import (
    LocalBackend,
    RemoteBackend,
    ReproServer,
    ReproShell,
    ServiceCore,
    SessionCache,
    is_error,
    parse_connect,
)
from repro.service.shell import run_shell


# -- ServiceCore dispatch --------------------------------------------------


def test_core_open_estimate_and_reuse():
    core = ServiceCore()
    first = core.handle({"op": "open", "graph": "harary:4,12"})
    assert first["task"] == "graph_open"
    assert first["payload"]["created"] is True
    again = core.handle({"op": "open", "graph": "harary:4,12"})
    assert again["payload"]["created"] is False
    estimate = core.handle(
        {"op": "estimate", "graph": "harary:4,12", "seed": 3}
    )
    assert estimate["task"] == "connectivity"
    assert estimate["fingerprint"] == first["payload"]["fingerprint"]
    assert "request_s" in estimate["timings"]
    assert core.cache.stats == {"hits": 2, "misses": 1, "evictions": 0}


def test_core_matches_direct_session():
    """A service answer == the session method's envelope, bit for bit."""
    core = ServiceCore()
    served = Result.from_dict(
        core.handle({"op": "estimate", "graph": "hypercube:3", "seed": 5})
    )
    direct = GraphSession("hypercube:3").connectivity(seed=5)
    assert served.canonical_json() == direct.canonical_json()
    served_sim = Result.from_dict(
        core.handle(
            {"op": "simulate", "graph": "hypercube:3",
             "program": "flooding", "seed": 2}
        )
    )
    direct_sim = GraphSession("hypercube:3").simulate(
        program="flood-min", seed=2, show_outputs=5  # the op's default
    )
    assert served_sim.canonical_json() == direct_sim.canonical_json()


def test_core_session_handle_and_unknown_handle():
    core = ServiceCore()
    fingerprint = core.handle({"op": "open", "graph": "harary:4,12"})[
        "payload"
    ]["fingerprint"]
    by_handle = core.handle({"op": "node_list", "session": fingerprint})
    assert by_handle["payload"]["n"] == 12
    missing = core.handle({"op": "node_list", "session": "feedbeef"})
    assert is_error(missing)
    assert missing["payload"]["error_type"] == "service"


def test_core_error_taxonomy():
    core = ServiceCore()
    no_op = core.handle({})
    assert no_op["payload"]["error_type"] == "service"
    bad_graph = core.handle({"op": "estimate", "graph": "mystery:1"})
    assert bad_graph["payload"]["error_type"] == "graph"
    bad_node = core.handle(
        {"op": "node_nbr", "graph": "harary:4,12", "node": 99}
    )
    assert bad_node["payload"]["error_type"] == "graph"
    bad_kind = core.handle(
        {"op": "pack", "graph": "harary:4,12", "kind": "bogus"}
    )
    assert bad_kind["payload"]["error_type"] == "service"
    stats = core.handle({"op": "stats"})["payload"]
    assert stats["errors"] == 4 and stats["requests"] == 5


def test_core_node_ops():
    core = ServiceCore()
    nbr = core.handle(
        {"op": "node_nbr", "graph": "harary:4,12", "node": "0"}
    )
    assert nbr["payload"]["node"] == 0  # digit string resolved to int
    assert nbr["payload"]["degree"] == len(nbr["payload"]["neighbors"]) == 4
    path = core.handle(
        {"op": "node_path", "graph": "harary:4,12",
         "source": 0, "target": 6}
    )
    assert path["payload"]["reachable"] is True
    assert path["payload"]["path"][0] == 0
    assert path["payload"]["path"][-1] == 6


def test_core_mutation_rekeys_cache_and_matches_cold_session():
    core = ServiceCore()
    opened = core.handle({"op": "open", "graph": "harary:4,12"})
    old_fp = opened["payload"]["fingerprint"]
    mutated = core.handle({"op": "edge_new", "session": old_fp, "a": 0, "b": 6})
    new_fp = mutated["payload"]["fingerprint"]
    assert new_fp != old_fp
    assert core.cache.fingerprints() == [new_fp]  # re-keyed, old gone
    assert is_error(core.handle({"op": "node_list", "session": old_fp}))

    # warm (mutated, incremental) == cold (built from the final graph)
    warm = Result.from_dict(
        core.handle({"op": "estimate", "session": new_fp, "seed": 1})
    )
    import networkx as nx

    cold_graph = parse_graph_spec("harary:4,12")
    cold_graph.add_edge(0, 6)
    cold = GraphSession(cold_graph, label="harary:4,12").connectivity(seed=1)
    assert warm.fingerprint == cold.fingerprint
    assert warm.payload == cold.payload

    # removing the edge again returns to the original fingerprint
    back = core.handle({"op": "edge_rmv", "session": new_fp, "a": 0, "b": 6})
    assert back["payload"]["fingerprint"] == old_fp


def test_core_mutation_errors_keep_session():
    core = ServiceCore()
    fp = core.handle({"op": "open", "graph": "harary:4,12"})["payload"][
        "fingerprint"
    ]
    dup = core.handle({"op": "edge_new", "session": fp, "a": 0, "b": 1})
    assert dup["payload"]["error_type"] == "graph"
    assert core.cache.fingerprints() == [fp]  # unchanged, still open


def test_core_stats_payload_shape():
    core = ServiceCore(cache_capacity=4)
    core.handle({"op": "estimate", "graph": "harary:4,12"})
    stats = core.handle({"op": "stats"})["payload"]
    assert stats["cache"]["capacity"] == 4
    assert stats["cache"]["sessions"] == 1
    assert stats["ops"]["estimate"] == 1
    (row,) = stats["sessions"]
    assert row["graph"] == "harary:4,12"
    assert set(row["stats"]) == {
        "canonicalizations", "cache_hits", "cache_misses",
        "evictions", "mutations", "invalidations",
    }
    # the whole stats payload is JSON-clean (goes on the wire verbatim)
    json.dumps(stats)


# -- SessionCache ----------------------------------------------------------


def test_session_cache_lru_eviction_and_memo_purge():
    cache = SessionCache(capacity=2)
    _, fp1, _ = cache.open("harary:4,12")
    _, fp2, _ = cache.open("hypercube:3")
    cache.open("harary:4,12")  # touch: fp1 becomes most-recent
    _, fp3, _ = cache.open("fat_cycle:2,4")  # evicts fp2 (LRU)
    assert cache.fingerprints() == [fp1, fp3]
    assert cache.stats["evictions"] == 1
    with pytest.raises(ServiceError):
        cache.get(fp2)
    # the evicted spec rebuilds (memo was purged with the session)
    _, fp2_again, created = cache.open("hypercube:3")
    assert created and fp2_again == fp2


def test_session_cache_same_graph_two_specs_is_one_session():
    cache = SessionCache()
    session_a, fp_a, _ = cache.open("harary:4,12")
    session_b, fp_b, created = cache.open("harary:04,12")
    assert fp_a == fp_b and session_a is session_b and not created
    assert cache.stats["hits"] == 1
    assert len(cache) == 1


def test_session_cache_capacity_validation():
    with pytest.raises(ServiceError):
        SessionCache(capacity=0)


# -- the shell -------------------------------------------------------------


def run_script(lines, json_mode=False, core=None):
    out = io.StringIO()
    shell = ReproShell(
        LocalBackend(core), out=out, json_mode=json_mode
    )
    errors = shell.run(lines)
    return out.getvalue(), errors, shell


def test_shell_full_tour():
    output, errors, shell = run_script([
        "graph open harary:4,12",
        "node list",
        "node nbr 0",
        "node n 0",
        "node p 0 6",
        "estimate k",
        "pack",
        "pack spanning",
        "simulate flooding",
        "edge new 0 6",
        "edge rmv 0 6",
        "stats",
        "help",
        "quit",
    ])
    assert errors == 0
    assert "opened harary:4,12" in output
    assert "12 node(s)" in output
    assert "nbr(0)" in output and "n(0) = 4" in output
    assert "path 0 -> 6" in output
    assert "k ∈ [" in output
    assert "CDS packing" in output and "spanning packing" in output
    assert "flood-min" in output
    assert "edge (0, 6) added" in output
    assert "edge (0, 6) removed" in output
    assert "commands" in output  # help text


def test_shell_requires_open_graph_and_counts_errors():
    output, errors, _ = run_script(["node list", "estimate k"])
    assert errors == 2
    assert "no graph open" in output


def test_shell_unknown_command_and_bad_usage():
    output, errors, _ = run_script([
        "frobnicate", "edge new 1", "graph close x", "", "# a comment",
    ])
    assert errors == 3
    assert "unknown command" in output
    assert "usage: edge new" in output


def test_shell_json_mode_emits_envelopes():
    output, errors, _ = run_script(
        ["graph open harary:4,12", "estimate k"], json_mode=True
    )
    assert errors == 0
    first, second = output.strip().splitlines()
    assert json.loads(first)["task"] == "graph_open"
    envelope = Result.from_dict(json.loads(second))
    assert envelope.task == "connectivity"


def test_shell_seed_threads_into_requests():
    core = ServiceCore()
    output, errors, _ = run_script(
        ["graph open harary:4,12", "seed 7", "estimate k"], core=core
    )
    assert errors == 0
    direct = GraphSession("harary:4,12").connectivity(seed=7)
    assert f"[{direct.payload['lower_bound']:.2f}" in output


def test_shell_edge_mutation_follows_fingerprint():
    _, errors, shell = run_script([
        "graph open harary:4,12", "edge new 0 6", "node list",
    ])
    assert errors == 0
    assert shell.session is not None
    # the followed handle answers (i.e. it is the *new* fingerprint)
    response = shell.backend.request(
        {"op": "node_list", "session": shell.session}
    )
    assert not is_error(response)


def test_run_shell_exit_codes():
    assert run_shell(
        LocalBackend(), source=["ping"], out=io.StringIO()
    ) == 0
    assert run_shell(
        LocalBackend(), source=["bogus"], out=io.StringIO()
    ) == 1
    assert run_shell(
        LocalBackend(), source=["ping"], graph="mystery:1", out=io.StringIO()
    ) == 1  # bad --graph spec fails fast


def test_parse_connect():
    assert parse_connect("example.org:7714") == ("example.org", 7714)
    assert parse_connect("7714") == ("127.0.0.1", 7714)
    assert parse_connect(":7714") == ("127.0.0.1", 7714)
    with pytest.raises(ServiceError):
        parse_connect("nope")


# -- daemon lifecycle ------------------------------------------------------


def test_daemon_remote_shell_and_shutdown_op():
    server = ReproServer(("127.0.0.1", 0))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02}
    )
    thread.start()
    try:
        out = io.StringIO()
        backend = RemoteBackend("127.0.0.1", server.port)
        code = run_shell(
            backend,
            source=["estimate k", "edge new 0 6", "estimate k", "stats"],
            graph="harary:4,12",
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "edge (0, 6) added" in text
        assert "mutations=1" in text

        # a second client sends the shutdown op; the daemon answers it,
        # then stops accepting
        backend2 = RemoteBackend("127.0.0.1", server.port)
        response = backend2.request({"op": "shutdown"})
        assert response["task"] == "shutdown"
        backend2.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()

    with pytest.raises(ServiceError):
        RemoteBackend("127.0.0.1", server.port)  # nobody listening


def test_remote_backend_connect_failure_message():
    with pytest.raises(ServiceError) as excinfo:
        RemoteBackend("127.0.0.1", 1)  # reserved port, nothing there
    assert "cannot connect" in str(excinfo.value)


# -- CSV adjacency import --------------------------------------------------


TRIANGLE_PLUS = """\
,0,1,2,3
0,,1,1,
1,1,,1,
2,1,1,,1
3,,,1,
"""


def write_csv(tmp_path, text, name="graph.csv"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return str(path)


def test_csv_roundtrip(tmp_path):
    path = write_csv(tmp_path, TRIANGLE_PLUS)
    graph = load_adjacency_csv(path)
    assert sorted(graph.nodes()) == [0, 1, 2, 3]
    assert sorted(tuple(sorted(e)) for e in graph.edges()) == [
        (0, 1), (0, 2), (1, 2), (2, 3),
    ]
    # the spec family front door agrees, and the spec survives the
    # shell's `graph open <file.csv>` translation
    via_spec = parse_graph_spec(f"csv:{path}")
    assert sorted(via_spec.edges()) == sorted(graph.edges())


def test_csv_upper_triangle_only(tmp_path):
    path = write_csv(tmp_path, """\
    ,a,b,c
    a,,1,
    b,,,x
    c,,,
    """)
    graph = load_adjacency_csv(path)
    assert sorted(graph.edges()) == [("a", "b"), ("b", "c")]


def test_csv_asymmetric_explicit_zero_rejected(tmp_path):
    path = write_csv(tmp_path, """\
    ,0,1
    0,,1
    1,0,
    """)
    with pytest.raises(GraphValidationError) as excinfo:
        load_adjacency_csv(path)
    assert "mirror" in str(excinfo.value)


def test_csv_validation_errors(tmp_path):
    with pytest.raises(GraphValidationError):
        load_adjacency_csv(str(tmp_path / "missing.csv"))
    with pytest.raises(GraphValidationError):
        load_adjacency_csv(write_csv(tmp_path, ",0,0\n0,,1\n", "dup.csv"))
    with pytest.raises(GraphValidationError):
        load_adjacency_csv(
            write_csv(tmp_path, ",0,1\n9,1,\n", "rogue.csv")
        )
    with pytest.raises(GraphValidationError):
        load_adjacency_csv(
            write_csv(tmp_path, ",0,1\n0,,1,1,1\n", "wide.csv")
        )


def test_csv_through_shell_and_session(tmp_path):
    path = write_csv(tmp_path, TRIANGLE_PLUS)
    out = io.StringIO()
    shell = ReproShell(LocalBackend(), out=out)
    errors = shell.run([f"graph open {path}", "node nbr 2", "estimate k"])
    assert errors == 0
    assert "nbr(2) = [0 1 3]  (degree 3)" in out.getvalue()
    # a GraphSession accepts the spec string directly too
    session = GraphSession(f"csv:{path}")
    assert session.n == 4 and session.m == 4


# -- CLI wiring ------------------------------------------------------------


def test_cli_shell_subcommand(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setattr(
        "sys.stdin", io.StringIO("estimate k\nstats\nquit\n")
    )
    code = main(["shell", "--graph", "harary:4,12"])
    captured = capsys.readouterr()
    assert code == 0
    assert "opened harary:4,12" in captured.out
    assert "k ∈ [" in captured.out


def test_cli_shell_scripted_error_exit(capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setattr("sys.stdin", io.StringIO("bogus\n"))
    code = main(["shell"])
    assert code == 1


def test_cli_experiments_lists_service_row(capsys):
    from repro.cli import main

    assert main(["experiments"]) == 0
    assert "bench_service" in capsys.readouterr().out


# -- batch op --------------------------------------------------------------


def test_core_batch_op_matches_library_rows():
    from repro.api import batch

    core = ServiceCore()
    matrix = {"graphs": ["harary:4,12"], "tasks": ["connectivity"], "trials": 3}
    envelope = core.handle(
        {"op": "batch", "jobs": matrix, "base_seed": 0, "backend": "thread",
         "workers": 2}
    )
    assert not is_error(envelope)
    payload = envelope["payload"]
    assert payload["jobs"] == 3
    assert payload["errors"] == 0
    assert payload["backend"] == "thread"
    assert payload["workers"] == 2
    direct = batch.run(matrix, base_seed=0)
    assert payload["rows"] == [r.to_dict(include_timings=False) for r in direct]


def test_core_batch_op_counts_error_rows():
    core = ServiceCore()
    envelope = core.handle(
        {"op": "batch", "jobs": [{"graph": "mystery:1"}, {"graph": "hypercube:3"}]}
    )
    payload = envelope["payload"]
    assert payload["jobs"] == 2
    assert payload["errors"] == 1
    assert payload["rows"][0]["payload"]["error_type"] == "graph"


def test_core_batch_op_refuses_server_side_paths():
    core = ServiceCore()
    envelope = core.handle({"op": "batch", "jobs": "/etc/jobs.json"})
    assert is_error(envelope)
    assert envelope["payload"]["error_type"] == "service"
    assert "file path" in envelope["payload"]["error"]
    missing = core.handle({"op": "batch"})
    assert is_error(missing)
    assert "'jobs'" in missing["payload"]["error"]


def test_core_batch_op_unknown_backend_is_graph_error():
    core = ServiceCore()
    envelope = core.handle(
        {"op": "batch", "jobs": [{"graph": "hypercube:3"}], "backend": "quantum"}
    )
    assert is_error(envelope)
    assert envelope["payload"]["error_type"] == "graph"
    assert "registered backends" in envelope["payload"]["error"]
