"""Generators must hit their advertised connectivity/diameter parameters."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.connectivity import edge_connectivity, vertex_connectivity
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    gnp_connected,
    harary_graph,
    hypercube,
    random_k_connected,
    random_regular_connected,
    torus_grid,
)


class TestHarary:
    @pytest.mark.parametrize("k,n", [(2, 8), (3, 9), (4, 20), (5, 12), (6, 15)])
    def test_connectivity_exact(self, k, n):
        g = harary_graph(k, n)
        assert vertex_connectivity(g) == k
        assert edge_connectivity(g) == k

    @pytest.mark.parametrize("k,n", [(2, 10), (4, 11)])
    def test_edge_count_minimal(self, k, n):
        g = harary_graph(k, n)
        assert g.number_of_edges() == -(-k * n // 2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphValidationError):
            harary_graph(1, 10)
        with pytest.raises(GraphValidationError):
            harary_graph(5, 5)


class TestCliqueChain:
    def test_connectivity_is_k(self):
        g = clique_chain(4, 6)
        assert vertex_connectivity(g) == 4

    def test_diameter_is_length_minus_one(self):
        g = clique_chain(3, 7)
        assert nx.diameter(g) == 6

    def test_node_count(self):
        assert clique_chain(5, 4).number_of_nodes() == 20

    def test_single_block_is_clique(self):
        g = clique_chain(4, 1)
        assert g.number_of_edges() == 6

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphValidationError):
            clique_chain(0, 3)


class TestFatCycle:
    def test_connectivity_twice_width(self):
        g = fat_cycle(2, 6)
        assert vertex_connectivity(g) == 4

    def test_diameter(self):
        g = fat_cycle(2, 8)
        assert nx.diameter(g) == 4

    def test_rejects_short_cycle(self):
        with pytest.raises(GraphValidationError):
            fat_cycle(2, 2)


class TestHypercubeAndTorus:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_hypercube_connectivity(self, d):
        g = hypercube(d)
        assert g.number_of_nodes() == 2**d
        assert vertex_connectivity(g) == d

    def test_torus_connectivity(self):
        g = torus_grid(4, 5)
        assert vertex_connectivity(g) == 4

    def test_integer_labels(self):
        g = hypercube(3)
        assert set(g.nodes()) == set(range(8))


class TestRandomFamilies:
    def test_random_regular_connected(self):
        g = random_regular_connected(4, 20, rng=3)
        assert nx.is_connected(g)
        assert all(d == 4 for _, d in g.degree())

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(GraphValidationError):
            random_regular_connected(3, 9, rng=1)

    def test_random_k_connected_at_least_k(self):
        g = random_k_connected(24, 4, rng=5)
        assert vertex_connectivity(g) >= 4

    def test_random_k_connected_small_n_complete(self):
        g = random_k_connected(4, 5, rng=1)
        assert g.number_of_edges() == 6

    def test_gnp_connected(self):
        g = gnp_connected(20, 0.3, rng=2)
        assert nx.is_connected(g)

    def test_determinism_under_seed(self):
        g1 = random_regular_connected(4, 16, rng=42)
        g2 = random_regular_connected(4, 16, rng=42)
        assert set(g1.edges()) == set(g2.edges())
