"""Unit tests for the figure renderers (repro.analysis.figures)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.figures import (
    BridgingFigure,
    ConnectorFigure,
    LowerBoundFigure,
    figure1_bridging_graph,
    figure2_connector_paths,
    figure3_construction,
)
from repro.graphs.generators import harary_graph
from repro.lowerbounds.construction import build_g_xy, build_h_xy


class TestFigure1:
    def test_structure_and_render(self):
        fig = figure1_bridging_graph(
            harary_graph(6, 30), n_classes=12, layers=6, rng=3
        )
        assert fig.layer == 4
        assert len(fig.components_per_class) == 12
        assert fig.excess_after <= fig.excess_before
        assert fig.matched >= 0
        assert fig.random_type2 >= 0
        text = fig.render()
        assert "[Figure 1]" in text
        assert f"layer {fig.layer}" in text
        assert "maximal matching" in text

    def test_deterministic_under_seed(self):
        graph = harary_graph(4, 20)
        first = figure1_bridging_graph(graph, n_classes=8, layers=6, rng=7)
        second = figure1_bridging_graph(graph, n_classes=8, layers=6, rng=7)
        assert first.render() == second.render()

    def test_render_lists_all_classes(self):
        fig = figure1_bridging_graph(
            harary_graph(4, 16), n_classes=5, layers=6, rng=1
        )
        text = fig.render()
        for class_id in range(5):
            assert f"class {class_id}:" in text


class TestFigure2:
    def test_counts_match_inputs(self):
        graph = harary_graph(4, 20)
        members = set(range(0, 20, 2))  # every other node
        component = {0, 2, 4}
        fig = figure2_connector_paths(graph, component, members)
        assert fig.component_size == 3
        assert fig.class_size == 10
        text = fig.render()
        assert "[Figure 2]" in text
        assert "short connector paths" in text
        assert "long connector paths" in text

    def test_internals_disjoint_from_class(self):
        graph = harary_graph(4, 20)
        members = set(range(0, 20, 2))
        component = {0, 2}
        fig = figure2_connector_paths(graph, component, members)
        for internal in fig.short_internals:
            assert internal not in members
        for u, w in fig.long_pairs:
            assert u not in members
            assert w not in members

    def test_long_pairs_rendered(self):
        """The render lists up to six long paths in C --- u --- w --- C'
        caption format when any exist."""
        fig = ConnectorFigure(
            component_size=2,
            class_size=4,
            short_internals=[],
            long_pairs=[(10, 11), (12, 13)],
        )
        text = fig.render()
        assert "10 (type 2)" in text
        assert "13 (type 3)" in text


class TestFigure3:
    def test_weighted_instance(self):
        inst = build_h_xy(5, 4, {1, 2}, {2, 4})
        fig = figure3_construction(inst)
        assert fig.h == 5
        assert fig.ell == 4
        assert fig.n_heavy == (5 + 1) * (2 * 4)
        assert fig.n_encoding == len({1, 2}) + len({2, 4})
        assert fig.diameter <= 3
        text = fig.render()
        assert "[Figure 3]" in text
        assert "X = [1, 2]" in text
        assert "Y = [2, 4]" in text

    def test_blown_up_instance(self):
        inst = build_g_xy(4, 3, 3, {1}, {1})
        fig = figure3_construction(inst)
        assert fig.w == 3
        assert fig.diameter <= 3
        # Heavy clique nodes: (h+1) paths × 2ℓ columns × w copies.
        assert fig.n_heavy == (4 + 1) * (2 * 3) * 3

    def test_gadget_degrees_cover_halves(self):
        inst = build_h_xy(4, 4, {1, 3}, {2})
        fig = figure3_construction(inst)
        # a and b each cover roughly half the heavy nodes plus their
        # encoding nodes and each other.
        assert fig.degree_a + fig.degree_b >= fig.n_heavy
