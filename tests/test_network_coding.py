"""Tests for the RLNC comparison baseline (experiment E17 machinery)."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.network_coding import (
    CodedBroadcastOutcome,
    Gf2Basis,
    coded_packet_bits,
    compare_with_tree_broadcast,
    rlnc_gossip,
    routed_packet_bits,
)
from repro.core.cds_packing import fractional_cds_packing
from repro.errors import GraphValidationError
from repro.graphs.generators import harary_graph


class TestGf2Basis:
    def test_insert_grows_rank(self):
        basis = Gf2Basis(4)
        assert basis.insert(0b0001)
        assert basis.insert(0b0010)
        assert basis.rank == 2

    def test_duplicate_insert_rejected(self):
        basis = Gf2Basis(4)
        basis.insert(0b0101)
        assert not basis.insert(0b0101)
        assert basis.rank == 1

    def test_linear_combination_rejected(self):
        basis = Gf2Basis(4)
        basis.insert(0b0011)
        basis.insert(0b0101)
        assert not basis.insert(0b0110)  # xor of the two rows
        assert basis.rank == 2

    def test_contains(self):
        basis = Gf2Basis(5)
        basis.insert(0b00111)
        basis.insert(0b01001)
        assert basis.contains(0b01110)
        assert not basis.contains(0b10000)

    def test_zero_vector_always_contained(self):
        basis = Gf2Basis(3)
        assert basis.contains(0)
        assert not basis.insert(0)

    def test_full_rank_detection(self):
        basis = Gf2Basis(3)
        for vector in (0b001, 0b011, 0b111):
            basis.insert(vector)
        assert basis.is_full
        assert basis.contains(0b101)

    def test_oversized_vector_rejected(self):
        basis = Gf2Basis(3)
        with pytest.raises(GraphValidationError):
            basis.insert(0b1000)

    def test_bad_dimension_rejected(self):
        with pytest.raises(GraphValidationError):
            Gf2Basis(0)

    def test_random_combination_in_span(self):
        rng = random.Random(0)
        basis = Gf2Basis(6)
        basis.insert(0b000111)
        basis.insert(0b101010)
        for _ in range(20):
            assert basis.contains(basis.random_combination(rng))

    @settings(max_examples=25, deadline=None)
    @given(
        vectors=st.lists(st.integers(1, 2**8 - 1), min_size=1, max_size=12)
    )
    def test_rank_matches_gaussian_elimination(self, vectors):
        """Basis rank equals the rank computed by naive elimination."""
        basis = Gf2Basis(8)
        for vector in vectors:
            basis.insert(vector)
        rows = list(vectors)
        rank = 0
        for bit in reversed(range(8)):
            pivot = next(
                (r for r in rows if r.bit_length() - 1 == bit), None
            )
            if pivot is None:
                continue
            rank += 1
            rows = [
                (r ^ pivot) if (r >> bit) & 1 and r != pivot else r
                for r in rows
                if r != pivot
            ]
            rows = [r for r in rows if r]
        assert basis.rank == rank


class TestRlncGossip:
    def test_completes_on_cycle(self):
        graph = nx.cycle_graph(8)
        out = rlnc_gossip(graph, {i: i for i in range(4)}, rng=1)
        assert out.n_messages == 4
        assert out.slots >= 1

    def test_single_message_single_source(self):
        graph = nx.path_graph(5)
        out = rlnc_gossip(graph, {0: 2}, rng=2)
        assert out.slots >= 1
        # Distance from node 2 to the path ends is 2: at least 2 slots.
        assert out.slots >= 2

    def test_coefficient_overhead_charged(self):
        graph = nx.complete_graph(6)
        n_messages = 40
        out = rlnc_gossip(
            graph,
            {i: i % 6 for i in range(n_messages)},
            payload_bits=16,
            budget_bits=16,
            rng=3,
        )
        assert out.packet_bits == n_messages + 16
        assert out.rounds_per_packet == (n_messages + 16 + 15) // 16
        assert out.rounds == out.slots * out.rounds_per_packet

    def test_throughput_decreases_with_message_count(self):
        """The paper's point: coefficients cap coded throughput."""
        graph = harary_graph(6, 18)
        small = rlnc_gossip(
            graph, {i: i % 18 for i in range(6)}, budget_bits=32, rng=4
        )
        large = rlnc_gossip(
            graph, {i: i % 18 for i in range(96)}, budget_bits=32, rng=4
        )
        assert large.rounds_per_packet > small.rounds_per_packet

    def test_rejects_empty_sources(self):
        with pytest.raises(GraphValidationError):
            rlnc_gossip(nx.path_graph(3), {}, rng=0)

    def test_rejects_disconnected_graph(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            rlnc_gossip(graph, {0: 0}, rng=0)

    def test_rejects_unknown_source_node(self):
        with pytest.raises(GraphValidationError):
            rlnc_gossip(nx.path_graph(3), {0: 99}, rng=0)

    def test_rejects_non_contiguous_ids(self):
        with pytest.raises(GraphValidationError):
            rlnc_gossip(nx.path_graph(3), {5: 0}, rng=0)

    def test_rejects_bad_budget(self):
        with pytest.raises(GraphValidationError):
            rlnc_gossip(nx.path_graph(3), {0: 0}, budget_bits=0, rng=0)

    def test_deterministic_under_seed(self):
        graph = harary_graph(4, 12)
        sources = {i: i for i in range(6)}
        first = rlnc_gossip(graph, sources, rng=7)
        second = rlnc_gossip(graph, sources, rng=7)
        assert first.slots == second.slots

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 1000), n_messages=st.integers(1, 10))
    def test_always_terminates_on_connected_graphs(self, seed, n_messages):
        graph = harary_graph(4, 14)
        sources = {i: i % 14 for i in range(n_messages)}
        out = rlnc_gossip(graph, sources, rng=seed)
        assert out.slots <= 2000


class TestPacketArithmetic:
    def test_coded_packet_bits(self):
        assert coded_packet_bits(100, 32) == 132

    def test_routed_packet_bits_logarithmic(self):
        assert routed_packet_bits(1024, 32) == 10 + 32
        assert routed_packet_bits(2, 32) == 1 + 32


class TestComparison:
    def test_comparison_runs_and_reports(self):
        graph = harary_graph(6, 24)
        result = fractional_cds_packing(graph, rng=3)
        comparison = compare_with_tree_broadcast(
            graph, result.packing, {i: i for i in range(12)}, rng=9
        )
        assert comparison.n_messages == 12
        assert comparison.coded_throughput > 0
        assert comparison.tree_throughput > 0
        assert comparison.tree_advantage == pytest.approx(
            comparison.tree_throughput / comparison.coded_throughput
        )

    def test_large_message_count_erodes_coding(self):
        """With many messages the coefficient overhead dominates and the
        tree advantage grows — the paper's qualitative crossover."""
        graph = harary_graph(6, 24)
        result = fractional_cds_packing(graph, rng=3)
        few = compare_with_tree_broadcast(
            graph,
            result.packing,
            {i: i % 24 for i in range(24)},
            budget_bits=24,
            rng=11,
        )
        many = compare_with_tree_broadcast(
            graph,
            result.packing,
            {i: i % 24 for i in range(480)},
            budget_bits=24,
            rng=11,
        )
        assert many.coded.rounds_per_packet > few.coded.rounds_per_packet
        assert many.tree_advantage > few.tree_advantage
        # At 20·n messages the coefficient overhead has flipped the race.
        assert many.tree_advantage > 1.0
