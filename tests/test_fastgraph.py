"""Property tests for the fastgraph kernel.

Two layers of guarantees:

* the kernel primitives (IndexedGraph, IntUnionFind, order-Kruskal)
  agree with networkx on random weighted graphs — MST cost always,
  MST *edge set* exactly when ties are broken by insertion index;
* the rewritten MWU packing is bit-identical to the preserved
  pre-kernel implementation under fixed seeds (same trees, same float
  weights, same iteration traces).
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.spanning_packing import (
    MwuParameters,
    fractional_spanning_tree_packing,
    mwu_spanning_packing,
)
from repro.core.spanning_packing_reference import (
    fractional_spanning_tree_packing_reference,
    mwu_spanning_packing_reference,
)
from repro.fastgraph import (
    IndexedGraph,
    IntUnionFind,
    NearSortedEdgeOrder,
    kruskal_from_order,
)
from repro.graphs.generators import (
    fat_cycle,
    harary_graph,
    hypercube,
    random_regular_connected,
)
from repro.graphs.union_find import IntUnionFind as ReExportedIntUnionFind
from repro.graphs.union_find import UnionFind


def _random_weighted_graph(n: int, p: float, seed: int) -> nx.Graph:
    rnd = random.Random(seed)
    graph = nx.gnp_random_graph(n, p, seed=seed)
    # Connect stragglers so an MST exists.
    nodes = list(graph.nodes())
    for a, b in zip(nodes, nodes[1:]):
        if not nx.has_path(graph, a, b):
            graph.add_edge(a, b)
    for _, _, data in graph.edges(data=True):
        data["cost"] = rnd.random()
    return graph


class TestIndexedGraph:
    def test_roundtrip_preserves_structure(self):
        graph = harary_graph(5, 17)
        indexed = IndexedGraph.from_networkx(graph)
        assert indexed.n == graph.number_of_nodes()
        assert indexed.m == graph.number_of_edges()
        back = indexed.to_networkx()
        assert set(back.nodes()) == set(graph.nodes())
        assert {frozenset(e) for e in back.edges()} == {
            frozenset(e) for e in graph.edges()
        }

    def test_edge_order_matches_networkx_iteration(self):
        graph = harary_graph(6, 20)
        indexed = IndexedGraph.from_networkx(graph)
        for i, edge in enumerate(graph.edges()):
            assert frozenset(indexed.endpoints(i)) == frozenset(edge)

    def test_nx_edge_order_is_identity_on_full_graph(self):
        graph = harary_graph(4, 14)
        indexed = IndexedGraph.from_networkx(graph)
        assert indexed.nx_edge_order(range(indexed.m)) == list(range(indexed.m))

    def test_nx_edge_order_matches_rebuilt_subgraph(self):
        graph = harary_graph(6, 18)
        indexed = IndexedGraph.from_networkx(graph)
        rnd = random.Random(3)
        subset = [i for i in range(indexed.m) if rnd.random() < 0.5]
        # Build the part the way the pre-kernel code did and compare orders.
        part = nx.Graph()
        part.add_nodes_from(graph.nodes())
        part.add_edges_from(indexed.endpoints(i) for i in subset)
        expected = [frozenset(e) for e in part.edges()]
        got = [
            frozenset(indexed.endpoints(i))
            for i in indexed.nx_edge_order(subset)
        ]
        assert got == expected

    def test_tree_graph_equals_public_api_construction(self):
        graph = fat_cycle(3, 5)
        indexed = IndexedGraph.from_networkx(graph)
        edge_ids = kruskal_from_order(
            range(indexed.m), indexed.u, indexed.v, indexed.n
        )
        fast = indexed.tree_graph(edge_ids)
        slow = nx.Graph()
        slow.add_nodes_from(graph.nodes())
        slow.add_edges_from(indexed.endpoints(i) for i in edge_ids)
        assert set(fast.nodes()) == set(slow.nodes())
        assert {frozenset(e) for e in fast.edges()} == {
            frozenset(e) for e in slow.edges()
        }
        # The fast-path graph must behave like any other nx graph.
        assert fast.number_of_edges() == len(edge_ids)
        assert nx.is_forest(fast)
        fast.add_edge("sentinel-a", "sentinel-b")
        assert fast.has_edge("sentinel-b", "sentinel-a")

    def test_bfs_tree_edges_matches_networkx_bfs(self):
        graph = harary_graph(5, 16)
        indexed = IndexedGraph.from_networkx(graph)
        tree_ids = indexed.bfs_tree_edges(list(range(indexed.m)))
        root = indexed.nodes[0]
        expected = nx.bfs_tree(graph, root).to_undirected()
        got = {frozenset(indexed.endpoints(i)) for i in tree_ids}
        assert got == {frozenset(e) for e in expected.edges()}

    def test_is_connected_via(self):
        graph = harary_graph(4, 12)
        indexed = IndexedGraph.from_networkx(graph)
        assert indexed.is_connected_via()
        # A single edge cannot connect 12 nodes.
        assert not indexed.is_connected_via([0])


class TestIntUnionFind:
    def test_matches_generic_union_find_on_random_ops(self):
        rnd = random.Random(11)
        n = 60
        fast = IntUnionFind(n)
        slow = UnionFind(range(n))
        for _ in range(300):
            x, y = rnd.randrange(n), rnd.randrange(n)
            assert fast.union(x, y) == slow.union(x, y)
            assert fast.n_components == slow.n_components
            a, b = rnd.randrange(n), rnd.randrange(n)
            assert fast.connected(a, b) == slow.connected(a, b)
            assert fast.component_size(a) == slow.component_size(a)

    def test_reset_reuses_storage(self):
        uf = IntUnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.n_components == 3
        uf.reset()
        assert uf.n_components == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_reexported_from_graphs_union_find(self):
        assert ReExportedIntUnionFind is IntUnionFind


class TestKruskal:
    @pytest.mark.parametrize("seed", range(8))
    def test_mst_cost_matches_networkx_on_random_graphs(self, seed):
        graph = _random_weighted_graph(24, 0.25, seed)
        indexed = IndexedGraph.from_networkx(graph)
        costs = [data["cost"] for _, _, data in graph.edges(data=True)]
        order = sorted(range(indexed.m), key=lambda i: (costs[i], i))
        tree = kruskal_from_order(order, indexed.u, indexed.v, indexed.n)
        expected = nx.minimum_spanning_tree(graph, weight="cost")
        assert len(tree) == expected.number_of_edges()
        got_cost = sum(costs[i] for i in tree)
        want_cost = sum(
            data["cost"] for _, _, data in expected.edges(data=True)
        )
        assert got_cost == pytest.approx(want_cost, rel=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_mst_edge_set_matches_networkx_exactly(self, seed):
        """(cost, index) tie-break reproduces nx's stable sort, even with
        heavily duplicated costs."""
        rnd = random.Random(100 + seed)
        graph = _random_weighted_graph(20, 0.3, seed)
        for _, _, data in graph.edges(data=True):
            data["cost"] = rnd.randrange(4)  # many ties
        indexed = IndexedGraph.from_networkx(graph)
        costs = [data["cost"] for _, _, data in graph.edges(data=True)]
        order = sorted(range(indexed.m), key=lambda i: (costs[i], i))
        tree = kruskal_from_order(order, indexed.u, indexed.v, indexed.n)
        got = {frozenset(indexed.endpoints(i)) for i in tree}
        expected = nx.minimum_spanning_tree(graph, weight="cost")
        assert got == {frozenset(e) for e in expected.edges()}

    def test_near_sorted_order_resort_is_exact(self):
        rnd = random.Random(7)
        m = 200
        keys = [rnd.random() for _ in range(m)]
        order = NearSortedEdgeOrder(m)
        assert order.resort(keys) == sorted(
            range(m), key=lambda i: (keys[i], i)
        )
        # Perturb a few keys (the MWU pattern) and re-sort.
        for _ in range(10):
            keys[rnd.randrange(m)] += 0.5
        assert order.resort(keys) == sorted(
            range(m), key=lambda i: (keys[i], i)
        )


class TestMwuBitIdentity:
    PARAMS = [
        MwuParameters(epsilon=0.15, beta_factor=1.0),
        MwuParameters(epsilon=0.2, beta_factor=3.0),
    ]

    GRAPHS = [
        ("harary(5,24)", lambda: harary_graph(5, 24)),
        ("harary(8,24)", lambda: harary_graph(8, 24)),
        ("hypercube(4)", lambda: hypercube(4)),
        ("fat_cycle(3,6)", lambda: fat_cycle(3, 6)),
        ("regular(8,24)", lambda: random_regular_connected(8, 24, rng=2)),
    ]

    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_mwu_collections_bit_identical(self, name, builder):
        graph = builder()
        for params in self.PARAMS:
            new, new_trace, new_target = mwu_spanning_packing(
                graph, params=params
            )
            ref, ref_trace, ref_target = mwu_spanning_packing_reference(
                graph, params=params
            )
            assert new_target == ref_target
            assert new_trace.iterations == ref_trace.iterations
            assert new_trace.stopped_early == ref_trace.stopped_early
            assert new_trace.max_relative_load == ref_trace.max_relative_load
            # Same trees in the same order with the same float weights —
            # not approximately: bit-identical.
            assert [key for key, _ in new] == [key for key, _ in ref]
            assert [w for _, w in new] == [w for _, w in ref]

    @pytest.mark.parametrize("rng", [9, 61, 2024])
    def test_fractional_packing_bit_identical(self, rng):
        graph = harary_graph(6, 26)
        params = MwuParameters(epsilon=0.15, beta_factor=1.0)
        new = fractional_spanning_tree_packing(graph, params=params, rng=rng)
        ref = fractional_spanning_tree_packing_reference(
            graph, params=params, rng=rng
        )
        assert new.size == ref.size
        assert new.target == ref.target
        assert new.parts == ref.parts
        assert len(new.packing) == len(ref.packing)
        for wt_new, wt_ref in zip(new.packing, ref.packing):
            assert wt_new.weight == wt_ref.weight
            assert wt_new.class_id == wt_ref.class_id
            assert wt_new.edges == wt_ref.edges
        new.packing.verify()

    def test_rejects_disconnected(self):
        from repro.errors import GraphValidationError

        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            mwu_spanning_packing(graph)


class TestKargerPartRegime:
    """End-to-end coverage of the η > 1 path (Section 5.2).

    No reasonably sized test graph has λ > 60·ln n/ε², so η > 1 is
    forced via the ``lam`` override — the regime where the kernel
    sizes parts as λ/η instead of re-running the oracle per part.
    Sizes legitimately differ from the reference here (that oracle fix
    is intentional), so the checks are structural: a valid packing
    over >1 edge-disjoint parts, with the same Karger partition drawn
    from the same seed.
    """

    def test_multi_part_packing_is_valid(self):
        graph = nx.complete_graph(16)
        params = MwuParameters(epsilon=0.5, max_iterations=40)
        lam_override = 3000  # forces eta > 1 in choose_karger_parts
        result = fractional_spanning_tree_packing(
            graph, lam=lam_override, params=params, rng=17
        )
        assert result.parts > 1
        result.packing.verify()
        assert result.packing.max_edge_load() <= 1.0 + 1e-9
        assert result.size > 0

    def test_multi_part_partition_matches_reference_draws(self):
        """Both implementations consume one randrange per edge in
        graph.edges() order, so the part edge sets coincide."""
        from repro.graphs.sampling import (
            choose_karger_parts,
            karger_edge_partition,
        )

        graph = nx.complete_graph(16)
        params = MwuParameters(epsilon=0.5, max_iterations=40)
        lam_override = 3000
        eta = choose_karger_parts(lam_override, 16, params.epsilon)
        assert eta > 1
        nx_parts = karger_edge_partition(graph, eta, rng=17)
        result = fractional_spanning_tree_packing(
            graph, lam=lam_override, params=params, rng=17
        )
        connected_parts = sum(
            1
            for part in nx_parts
            if part.number_of_edges() and nx.is_connected(part)
        )
        assert result.parts == connected_parts
        # Every packed tree's edges must live inside a single part.
        part_of_edge = {}
        for index, part in enumerate(nx_parts):
            for e in part.edges():
                part_of_edge[frozenset(e)] = index
        for wt in result.packing:
            parts_used = {part_of_edge[e] for e in wt.edges}
            assert len(parts_used) == 1
