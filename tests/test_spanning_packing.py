"""Fractional spanning tree packing (Theorem 1.3, Lemmas F.1/F.2)."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.core.spanning_packing import (
    MwuParameters,
    fractional_spanning_tree_packing,
    mwu_spanning_packing,
)
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
)

FAST = MwuParameters(epsilon=0.2, beta_factor=3.0)


class TestMwuCore:
    def test_normalized_weights_form_valid_packing(self):
        g = harary_graph(5, 18)
        normalized, trace, target = mwu_spanning_packing(g, params=FAST)
        assert target == 2
        loads = {}
        for tree_edges, weight in normalized:
            assert weight >= 0
            for e in tree_edges:
                loads[e] = loads.get(e, 0.0) + weight
        assert max(loads.values()) <= 1.0 + 1e-9

    def test_stopping_rule_triggers(self):
        g = harary_graph(5, 18)
        _, trace, _ = mwu_spanning_packing(g, params=FAST)
        assert trace.stopped_early
        assert trace.iterations < FAST.iteration_cap(18)

    def test_load_trajectory_improves(self):
        """Lemma F.2's potential argument: the max relative load decreases
        from its initial value of `target` toward 1+O(ε)."""
        g = harary_graph(6, 20)
        _, trace, target = mwu_spanning_packing(g, params=FAST)
        # Initially a single tree of weight 1 loads its edges fully.
        assert trace.max_relative_load[0] == pytest.approx(1.0)
        # MWU spreads load: the max x_e shrinks toward (1+O(ε))/target.
        assert trace.max_relative_load[-1] <= trace.max_relative_load[0]
        assert trace.max_relative_load[-1] <= 1.5 / target + 0.2

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            mwu_spanning_packing(g)


class TestTheorem13:
    @pytest.mark.parametrize(
        "builder,expected_lam",
        [
            (lambda: harary_graph(5, 18), 5),
            (lambda: harary_graph(6, 20), 6),
            (lambda: hypercube(4), 4),
            (lambda: fat_cycle(2, 5), 4),
        ],
    )
    def test_size_close_to_tutte_bound(self, builder, expected_lam):
        """size >= ⌈(λ−1)/2⌉·(1−ε') for a modest ε'."""
        g = builder()
        result = fractional_spanning_tree_packing(g, params=FAST, rng=61)
        result.packing.verify()
        target = (expected_lam - 1 + 1) // 2  # ceil((λ-1)/2)
        assert result.size >= 0.6 * max(1, target)

    def test_edge_capacity_respected(self):
        g = harary_graph(6, 20)
        result = fractional_spanning_tree_packing(g, params=FAST, rng=62)
        assert result.packing.max_edge_load() <= 1.0 + 1e-9

    def test_size_never_exceeds_lambda(self):
        """Any fractional spanning tree packing has size <= λ (each tree
        crosses every edge cut)."""
        g = harary_graph(4, 16)
        result = fractional_spanning_tree_packing(g, params=FAST, rng=63)
        assert result.size <= edge_connectivity(g) + 1e-9

    def test_single_part_for_small_lambda(self):
        g = hypercube(3)
        result = fractional_spanning_tree_packing(g, params=FAST, rng=64)
        assert result.parts == 1

    def test_low_connectivity_tree_like(self):
        g = clique_chain(2, 5)
        result = fractional_spanning_tree_packing(g, params=FAST, rng=65)
        result.packing.verify()
        assert result.size >= 0.5

    def test_rejects_trivial_graphs(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(GraphValidationError):
            fractional_spanning_tree_packing(g)

    def test_trace_exposed(self):
        g = hypercube(3)
        result = fractional_spanning_tree_packing(g, params=FAST, rng=66)
        assert result.traces and result.traces[0].iterations >= 1
