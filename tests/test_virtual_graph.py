"""Virtual graph bookkeeping (Section 3.1 footnote 5 semantics)."""

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.core.virtual_graph import (
    ClassState,
    VirtualGraph,
    VirtualNode,
    default_layer_count,
)


@pytest.fixture
def vg():
    return VirtualGraph(nx.cycle_graph(6), layers=4, n_classes=2)


class TestClassState:
    def test_same_real_multiplicity(self):
        g = nx.path_graph(3)
        state = ClassState(class_id=0)
        state.add_real(g, 0)
        state.add_real(g, 0)
        assert state.multiplicity[0] == 2
        assert state.virtual_count() == 2
        assert state.n_components() == 1

    def test_adjacent_reals_merge(self):
        g = nx.path_graph(3)
        state = ClassState(class_id=0)
        state.add_real(g, 0)
        state.add_real(g, 2)
        assert state.n_components() == 2
        state.add_real(g, 1)  # bridges 0 and 2
        assert state.n_components() == 1

    def test_excess_components(self):
        g = nx.path_graph(5)
        state = ClassState(class_id=0)
        assert state.excess_components() == 0
        state.add_real(g, 0)
        state.add_real(g, 2)
        state.add_real(g, 4)
        assert state.excess_components() == 2


class TestVirtualGraph:
    def test_assignment_updates_projection(self, vg):
        vg.assign(VirtualNode(0, 1, 1), 0)
        vg.assign(VirtualNode(1, 1, 2), 0)
        assert vg.classes[0].n_components() == 1
        assert vg.real_classes[0] == {0}

    def test_double_assignment_rejected(self, vg):
        vg.assign(VirtualNode(0, 1, 1), 0)
        with pytest.raises(GraphValidationError):
            vg.assign(VirtualNode(0, 1, 1), 1)

    def test_class_range_checked(self, vg):
        with pytest.raises(GraphValidationError):
            vg.assign(VirtualNode(0, 1, 1), 7)

    def test_excess_sums_over_classes(self, vg):
        vg.assign(VirtualNode(0, 1, 1), 0)
        vg.assign(VirtualNode(3, 1, 1), 0)  # cycle_graph(6): 0 and 3 apart
        vg.assign(VirtualNode(1, 1, 1), 1)
        assert vg.excess_components() == 1

    def test_classes_per_real_bounded(self):
        g = nx.cycle_graph(4)
        vg = VirtualGraph(g, layers=4, n_classes=3)
        for layer in (1, 2, 3, 4):
            for vtype in (1, 2, 3):
                for v in g.nodes():
                    vg.assign(VirtualNode(v, layer, vtype), (v + layer) % 3)
        counts = vg.classes_per_real()
        assert all(c <= 3 * 4 for c in counts.values())
        assert sum(vg.virtual_counts_per_class()) == 4 * 4 * 3

    def test_odd_layers_rejected(self):
        with pytest.raises(GraphValidationError):
            VirtualGraph(nx.cycle_graph(3), layers=5, n_classes=1)

    def test_zero_classes_rejected(self):
        with pytest.raises(GraphValidationError):
            VirtualGraph(nx.cycle_graph(3), layers=4, n_classes=0)


class TestLayerCount:
    def test_even_and_minimum(self):
        assert default_layer_count(2) >= 4
        for n in (2, 10, 100, 1000):
            assert default_layer_count(n) % 2 == 0

    def test_grows_with_n(self):
        assert default_layer_count(2**12) > default_layer_count(4)
