"""Centralized fractional CDS packing (Theorem 1.2 / Appendix C driver)."""

import math

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.core.cds_packing import (
    PackingParameters,
    build_cds_classes,
    construct_cds_packing,
    fractional_cds_packing,
)
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import clique_chain, fat_cycle, harary_graph


class TestConstruction:
    def test_packing_valid_on_families(self, family_graph):
        k = vertex_connectivity(family_graph)
        result = construct_cds_packing(family_graph, k, rng=21)
        result.packing.verify()  # raises on any violation
        assert result.size > 0

    def test_membership_bound(self, harary_6_30):
        """Theorem 1.1: each node in O(log n) trees — concretely <= 3L."""
        result = construct_cds_packing(harary_6_30, 6, rng=22)
        layers = result.virtual_graph.layers
        counts = result.packing.trees_per_node()
        assert max(counts.values()) <= 3 * layers

    def test_size_lower_bound_certifies_connectivity(self, family_graph):
        """Any valid fractional dominating tree packing certifies k >= size."""
        k = vertex_connectivity(family_graph)
        result = construct_cds_packing(family_graph, k, rng=23)
        assert result.size <= k + 1e-9

    def test_tree_diameter_bound_loose(self, chain_graph):
        """Theorem 1.1 trees have diameter Õ(n/k); sanity: <= n."""
        result = construct_cds_packing(chain_graph, 4, rng=24)
        assert result.packing.max_diameter() <= chain_graph.number_of_nodes()

    def test_layer_history_recorded(self, harary_4_20):
        result = construct_cds_packing(harary_4_20, 4, rng=25)
        layers = result.virtual_graph.layers
        assert len(result.layer_history) == layers // 2

    def test_lemma_4_6_class_sizes(self, harary_6_30):
        """Lemma 4.6: each class has O(n log n / k) virtual nodes."""
        g = harary_6_30
        n, k = g.number_of_nodes(), 6
        vg, _ = build_cds_classes(g, n_classes=3, n_layers=8, rng=26)
        bound = 40 * n * math.log(n) / k  # generous constant
        assert all(c <= bound for c in vg.virtual_counts_per_class())

    def test_rejects_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphValidationError):
            construct_cds_packing(g, 1)

    def test_rejects_bad_k(self, harary_4_20):
        with pytest.raises(GraphValidationError):
            construct_cds_packing(harary_4_20, 0)

    def test_deterministic_under_seed(self, harary_4_20):
        r1 = construct_cds_packing(harary_4_20, 4, rng=99)
        r2 = construct_cds_packing(harary_4_20, 4, rng=99)
        assert r1.valid_classes == r2.valid_classes
        assert abs(r1.size - r2.size) < 1e-12


class TestGuessing:
    def test_try_and_error_returns_valid(self, harary_4_20):
        result = fractional_cds_packing(harary_4_20, rng=31)
        result.packing.verify()
        assert result.size >= 0.5

    def test_known_k_matches_direct_call(self, harary_4_20):
        direct = construct_cds_packing(harary_4_20, 4, rng=32)
        viaapi = fractional_cds_packing(harary_4_20, k=4, rng=32)
        assert direct.valid_classes == viaapi.valid_classes

    def test_works_on_low_connectivity(self):
        g = nx.cycle_graph(12)
        result = fractional_cds_packing(g, rng=33)
        result.packing.verify()


class TestParameters:
    def test_n_classes_scaling(self):
        p = PackingParameters(class_factor=0.5)
        assert p.n_classes(8) == 4
        assert p.n_classes(1) == 1

    def test_layers_even(self):
        p = PackingParameters()
        for n in (4, 100, 999):
            assert p.n_layers(n) % 2 == 0

    def test_retry_shrinks_classes(self):
        """With an absurd guess the construction retries and still returns
        a valid (smaller) packing."""
        g = nx.cycle_graph(16)  # k = 2
        result = construct_cds_packing(g, 8, rng=34)
        result.packing.verify()
        assert result.t_used <= result.t_requested
