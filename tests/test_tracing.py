"""Tests for the round-trace recorder (repro.simulator.tracing)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import harary_graph
from repro.simulator.algorithms.bfs import BfsProgram
from repro.simulator.algorithms.flooding import ExtremumFloodProgram
from repro.simulator.network import Network
from repro.simulator.runner import Model, simulate
from repro.simulator.tracing import RoundTrace, TraceEvent, Tracer


def _traced_flood(graph, values, seed=1):
    network = Network(graph, rng=seed)
    tracer = Tracer()
    result = simulate(
        network,
        tracer.wrap(lambda v: ExtremumFloodProgram(values[v])),
        model=Model.V_CONGEST,
    )
    return tracer.trace, result


class TestTracer:
    def test_every_node_has_round_zero_event(self):
        graph = nx.path_graph(5)
        trace, _ = _traced_flood(graph, {v: v for v in graph.nodes()})
        round0 = trace.events_in_round(0)
        assert {e.node for e in round0} == set(graph.nodes())
        assert all(e.sent for e in round0)  # flood starts by broadcasting

    def test_transparent_to_the_protocol(self):
        graph = harary_graph(4, 12)
        values = {v: (v * 5) % 12 for v in graph.nodes()}
        network = Network(graph, rng=1)
        plain = simulate(
            network, lambda v: ExtremumFloodProgram(values[v])
        )
        tracer = Tracer()
        traced = simulate(
            network, tracer.wrap(lambda v: ExtremumFloodProgram(values[v]))
        )
        assert plain.outputs == traced.outputs
        assert plain.metrics.rounds == traced.metrics.rounds

    def test_bfs_wave_schedule(self):
        """The trace pins the *schedule*: a node at distance d first
        transmits in round d (its discovery round)."""
        graph = nx.path_graph(6)
        network = Network(graph, rng=1)
        tracer = Tracer()
        simulate(
            network,
            tracer.wrap(lambda v: BfsProgram(is_root=(v == 0))),
            model=Model.V_CONGEST,
        )
        # Root announces at round 0; node d first sends at round d.
        assert tracer.trace.first_send_round(0) == 0
        for node in range(1, 6):
            assert tracer.trace.first_send_round(node) == node

    def test_activity_profile_decays_for_flood(self):
        """Min-flood activity is front-loaded: the first round has full
        participation, later rounds only improvements."""
        graph = harary_graph(4, 16)
        trace, _ = _traced_flood(graph, {v: v for v in graph.nodes()})
        profile = trace.activity_profile()
        assert profile[0] == 16
        assert profile[max(profile)] <= profile[0]

    def test_render_caps_output(self):
        graph = nx.path_graph(4)
        trace, _ = _traced_flood(graph, {v: v for v in graph.nodes()})
        text = trace.render(limit=3)
        assert "more events" in text
        assert text.splitlines()[0].startswith("round")

    def test_long_payload_summaries_truncated(self):
        event = TraceEvent(
            round_no=1,
            node="v",
            sent=True,
            payload_summary="x" * 100,
            halted=False,
        )
        trace = RoundTrace(events=[event])
        assert "x" * 100 in trace.render()  # render itself doesn't cut

        from repro.simulator.tracing import _summarize

        assert len(_summarize("y" * 100)) <= 40

    def test_halt_round_recorded(self):
        """A program that halts at a known round shows up in the trace."""
        from repro.simulator.faults import RetransmittingFloodProgram

        graph = nx.path_graph(4)
        network = Network(graph, rng=1)
        tracer = Tracer()
        simulate(
            network,
            tracer.wrap(
                lambda v: RetransmittingFloodProgram(v, horizon=5)
            ),
        )
        for node in graph.nodes():
            assert tracer.trace.halt_round(node) == 5

    def test_silent_node_has_no_first_send(self):
        class Mute(ExtremumFloodProgram):
            def on_start(self, ctx):
                ctx.output = self._best
                return None

        graph = nx.path_graph(3)
        network = Network(graph, rng=1)
        tracer = Tracer()
        simulate(network, tracer.wrap(lambda v: Mute(0)))
        assert tracer.trace.first_send_round(1) is None

    def test_rounds_counts_max(self):
        graph = nx.path_graph(8)
        trace, result = _traced_flood(graph, {v: v for v in graph.nodes()})
        assert trace.rounds() >= 7  # information must cross the path
