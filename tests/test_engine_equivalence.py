"""Engine equivalence: every registered engine against the indexed loop.

The refactored engine (``runner.py``, engine ``"indexed"``) must be
*bit-identical* to the preserved pre-engine loop
(``runner_reference.py``, engine ``"reference"``) under a fixed seed:
same :class:`SimulationResult` outputs, same metrics, and — where the
schedule matters — the same :class:`Tracer` transcript, event for event.
This suite runs every algorithm in ``repro/simulator/algorithms`` (and
the fault machinery, whose drop derivation is part of the contract) on
both engines and diffs the results.

The **differential matrix** at the bottom extends the same oracle
discipline to the multiprocess ``"sharded"`` engine
(``runner_sharded.py``): every registered scenario program × every
applicable transport × every engine, pinned seeds, byte-identical
traces. Sharded cases skip cleanly where the engine cannot run (no
``fork``) or would only add noise (single-core runners — set
``REPRO_SHARDED_TESTS=1`` to force them there).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import harary_graph
from repro.graphs.sampling import karger_edge_partition
from repro.simulator.algorithms.bfs import build_bfs_tree
from repro.simulator.algorithms.boruvka import distributed_mst
from repro.simulator.algorithms.convergecast import converge_sum
from repro.simulator.algorithms.exchange import exchange_once
from repro.simulator.algorithms.flooding import (
    ExtremumFloodProgram,
    elect_leader,
    flood_extremum,
)
from repro.simulator.algorithms.luby_mis import LubyMisProgram, luby_mis
from repro.simulator.algorithms.multikey_flood import multikey_flood
from repro.simulator.algorithms.pipelined_upcast import pipelined_upcast
from repro.simulator.algorithms.preprocessing import network_preprocessing
from repro.simulator.algorithms.shared_mst import simultaneous_msts
from repro.simulator.algorithms.subgraph_flood import (
    identify_components,
    subgraph_extremum,
)
from repro.simulator.faults import (
    FaultPlan,
    RetransmittingFloodProgram,
    simulate_with_faults,
)
from repro.simulator.network import Network
from repro.simulator.runner import (
    Model,
    SimulationResult,
    SyncRunner,
    available_engines,
    engine_context,
    simulate,
)
from repro.simulator.tracing import Tracer
from repro.utils.rng import ensure_rng
from sharded_support import SHARDED_SKIP_REASON, SHARDED_TESTS_OK
from vectorized_support import VECTORIZED_SKIP_REASON, VECTORIZED_TESTS_OK

ENGINES = ("indexed", "reference")


def _network(graph=None, seed=1) -> Network:
    if graph is None:
        graph = harary_graph(4, 14)
    return Network(graph, rng=seed)


def _assert_same_result(a: SimulationResult, b: SimulationResult) -> None:
    assert a.outputs == b.outputs
    assert list(a.outputs) == list(b.outputs)  # same node order too
    assert a.halted == b.halted
    _assert_same_metrics(a.metrics, b.metrics)


def _assert_same_metrics(a, b) -> None:
    assert a.rounds == b.rounds
    assert a.messages == b.messages
    assert a.bits == b.bits
    assert a.max_message_bits == b.max_message_bits
    assert a.phase_rounds == b.phase_rounds


def _on_engines(run):
    """Run ``run()`` under each engine; return {engine: value}."""
    results = {}
    for engine in ENGINES:
        with engine_context(engine):
            results[engine] = run()
    return results


class TestEngineRegistry:
    def test_both_engines_registered(self):
        engines = available_engines()
        assert "indexed" in engines
        assert "reference" in engines

    def test_vectorized_engine_registered(self):
        # Lazily registered but always listed — even without numpy the
        # module imports (and raises a clean error only when *run*).
        assert "vectorized" in available_engines()

    def test_unknown_engine_rejected(self):
        from repro.errors import SimulationError

        net = _network()
        with pytest.raises(SimulationError):
            simulate(net, lambda v: ExtremumFloodProgram(0), engine="no-such")

    def test_reference_rejects_clique(self):
        from repro.errors import SimulationError

        net = _network()
        with pytest.raises(SimulationError):
            simulate(
                net,
                lambda v: ExtremumFloodProgram(0),
                model=Model.CONGESTED_CLIQUE,
                engine="reference",
            )


class TestPrimitiveEquivalence:
    """Direct simulate() calls: result + full Tracer transcript."""

    def _traced(self, network, factory_of, model, rng_seed=7):
        tracer = Tracer()
        result = simulate(
            network,
            tracer.wrap(factory_of(network)),
            model=model,
            rng=rng_seed,
        )
        return result, tracer.trace

    def _check(self, graph, factory_of, model=Model.V_CONGEST):
        network = _network(graph)
        runs = _on_engines(
            lambda: self._traced(network, factory_of, model)
        )
        res_a, trace_a = runs["indexed"]
        res_b, trace_b = runs["reference"]
        _assert_same_result(res_a, res_b)
        assert trace_a.events == trace_b.events

    def test_extremum_flood(self):
        self._check(
            harary_graph(4, 16),
            lambda net: (
                lambda v: ExtremumFloodProgram((net.node_id(v) * 7) % 31)
            ),
        )

    def test_bfs_wave(self):
        from repro.simulator.algorithms.bfs import BfsProgram

        graph = nx.path_graph(9)
        self._check(
            graph,
            lambda net: (lambda v: BfsProgram(is_root=(v == 0))),
        )

    def test_luby_mis_uses_identical_context_rngs(self):
        # Luby draws from ctx.rng every phase: equality pins the per-node
        # fresh_seed order of both engines.
        self._check(
            harary_graph(4, 18),
            lambda net: (lambda v: LubyMisProgram()),
        )

    def test_retransmitting_flood(self):
        self._check(
            nx.cycle_graph(11),
            lambda net: (
                lambda v: RetransmittingFloodProgram(net.node_id(v), horizon=9)
            ),
        )

    def test_e_congest_per_neighbor_traffic(self):
        class SendRight:
            """Address one specific neighbor (E-CONGEST dict traffic)."""

            def __init__(self, node):
                self._node = node

            def on_start(self, ctx):
                right = (self._node + 1) % ctx.n
                return {right: ("tok", self._node)} if right in ctx.neighbors else None

            def on_round(self, ctx, inbox):
                ctx.halt(sorted(m.payload for m in inbox.values()))
                return None

        from repro.simulator.node import NodeProgram

        class Prog(SendRight, NodeProgram):
            pass

        self._check(
            nx.cycle_graph(10),
            lambda net: (lambda v: Prog(v)),
            model=Model.E_CONGEST,
        )


class TestFaultEquivalence:
    """Fault filtering consumes the plan RNG in the same order."""

    def test_iid_drops_identical(self):
        graph = harary_graph(4, 16)

        def run():
            network = _network(graph, seed=2)
            plan = FaultPlan(drop_probability=0.3, rng=11)
            return simulate_with_faults(
                network,
                lambda v: RetransmittingFloodProgram(
                    network.node_id(v), horizon=20
                ),
                plan,
                rng=5,
            )

        runs = _on_engines(run)
        _assert_same_result(runs["indexed"], runs["reference"])

    def test_crashes_identical(self):
        graph = nx.path_graph(8)

        def run():
            network = _network(graph, seed=2)
            plan = FaultPlan(crash_rounds={3: 2, 6: 4}, rng=1)
            return simulate_with_faults(
                network,
                lambda v: RetransmittingFloodProgram(v, horizon=14),
                plan,
                rng=5,
            )

        runs = _on_engines(run)
        _assert_same_result(runs["indexed"], runs["reference"])


class TestCompositeEquivalence:
    """Composite algorithms (many chained simulations) end to end."""

    def test_flood_extremum_and_leader(self):
        graph = harary_graph(4, 15)

        def run():
            network = _network(graph)
            values = {v: (network.node_id(v) * 3) % 50 for v in network.nodes}
            flood = flood_extremum(network, values)
            leader, election = elect_leader(network)
            return flood, leader, election

        runs = _on_engines(run)
        flood_a, leader_a, el_a = runs["indexed"]
        flood_b, leader_b, el_b = runs["reference"]
        _assert_same_result(flood_a, flood_b)
        assert leader_a == leader_b
        _assert_same_result(el_a, el_b)

    def test_subgraph_flood_and_components(self):
        graph = harary_graph(4, 16)

        def run():
            network = _network(graph)
            members = network.nodes[:12]
            adjacency = {
                v: {
                    u
                    for u in network.neighbors(v)
                    if u in members and (network.node_id(u) + network.node_id(v)) % 3
                }
                for v in network.nodes
            }
            values = {v: network.node_id(v) for v in network.nodes}
            flood = subgraph_extremum(network, members, adjacency, values)
            components, ident = identify_components(network, members, adjacency)
            return flood, components, ident

        runs = _on_engines(run)
        _assert_same_result(runs["indexed"][0], runs["reference"][0])
        assert runs["indexed"][1] == runs["reference"][1]
        _assert_same_result(runs["indexed"][2], runs["reference"][2])

    def test_exchange_and_convergecast(self):
        graph = harary_graph(4, 12)

        def run():
            network = _network(graph)
            heard, res = exchange_once(
                network, {v: network.node_id(v) % 9 for v in network.nodes}
            )
            tree, bfs_res = build_bfs_tree(
                network, min(network.nodes, key=network.node_id)
            )
            total, sum_res = converge_sum(
                network, tree, {v: 1 for v in network.nodes}
            )
            return heard, res, tree, bfs_res, total, sum_res

        runs = _on_engines(run)
        a, b = runs["indexed"], runs["reference"]
        assert a[0] == b[0]
        _assert_same_result(a[1], b[1])
        assert a[2] == b[2]
        _assert_same_result(a[3], b[3])
        assert a[4] == b[4] == 12
        _assert_same_result(a[5], b[5])

    def test_multikey_flood(self):
        graph = harary_graph(4, 12)

        def run():
            network = _network(graph)
            values = {
                v: {0: network.node_id(v), 1: -network.node_id(v)}
                for v in network.nodes
            }
            allowed = {
                v: {0: set(network.neighbors(v)), 1: set(network.neighbors(v))}
                for v in network.nodes
            }
            return multikey_flood(
                network, values, allowed, minimize=True, keys_bound=2
            )

        runs = _on_engines(run)
        _assert_same_result(runs["indexed"], runs["reference"])

    def test_pipelined_upcast(self):
        graph = harary_graph(4, 14)

        def run():
            network = _network(graph)
            items = {
                v: [(i % 3, network.node_id(v) % 100 + i) for i in range(2)]
                for v in network.nodes
            }
            return pipelined_upcast(network, items)

        runs = _on_engines(run)
        a, b = runs["indexed"], runs["reference"]
        assert a.collected == b.collected
        assert a.rounds == b.rounds
        assert a.root == b.root

    def test_distributed_mst(self):
        graph = harary_graph(4, 14)

        def run():
            network = _network(graph)
            mst = distributed_mst(
                network,
                lambda u, v: ((u * 13 + v * 7) % 19) + 1.0,
                model=Model.E_CONGEST,
            )
            return mst

        runs = _on_engines(run)
        assert runs["indexed"].edges == runs["reference"].edges
        _assert_same_metrics(
            runs["indexed"].metrics, runs["reference"].metrics
        )

    def test_simultaneous_msts(self):
        graph = harary_graph(6, 15)

        def run():
            rand = ensure_rng(4)
            parts = karger_edge_partition(graph, 2, rand)
            network = _network(graph, seed=3)
            return simultaneous_msts(network, parts)

        runs = _on_engines(run)
        a, b = runs["indexed"], runs["reference"]
        assert a.forests == b.forests
        assert a.fragment_rounds == b.fragment_rounds
        assert a.completion_rounds == b.completion_rounds
        assert a.upcast_items == b.upcast_items

    def test_network_preprocessing(self):
        graph = harary_graph(4, 13)

        def run():
            network = _network(graph)
            return network_preprocessing(network)

        runs = _on_engines(run)
        a, b = runs["indexed"], runs["reference"]
        assert a.leader == b.leader
        assert a.n == b.n == 13
        assert a.diameter_lower == b.diameter_lower
        _assert_same_metrics(a.metrics, b.metrics)

    def test_luby_mis_composite(self):
        graph = harary_graph(4, 17)

        def run():
            network = _network(graph, seed=6)
            return luby_mis(network, rng=9)

        runs = _on_engines(run)
        assert runs["indexed"][0] == runs["reference"][0]
        _assert_same_result(runs["indexed"][1], runs["reference"][1])


class TestDriverEquivalence:
    """The core distributed drivers, end to end on both engines."""

    def test_distributed_spanning_packing(self):
        from repro.core.spanning_packing_distributed import (
            distributed_spanning_packing,
        )

        graph = harary_graph(4, 12)

        def run():
            return distributed_spanning_packing(
                graph, rng=8, max_iterations=4
            )

        runs = _on_engines(run)
        a, b = runs["indexed"], runs["reference"]
        assert a.iterations_per_part == b.iterations_per_part
        assert a.packing.size == b.packing.size
        assert len(a.packing.trees) == len(b.packing.trees)
        _assert_same_metrics(a.report.measured, b.report.measured)

    def test_distributed_integral_packing(self):
        from repro.core.integral_packing_distributed import (
            distributed_integral_spanning_packing,
        )

        graph = harary_graph(6, 14)

        def run():
            return distributed_integral_spanning_packing(
                graph, parts_factor=1.0, rng=5
            )

        runs = _on_engines(run)
        a, b = runs["indexed"], runs["reference"]
        assert a.size == b.size
        assert a.total_rounds == b.total_rounds
        assert [sorted(map(sorted, f)) for f in a.mst_rounds.forests] == [
            sorted(map(sorted, f)) for f in b.mst_rounds.forests
        ]


# ----------------------------------------------------------------------
# The differential matrix: every registered scenario × transport × engine
# ----------------------------------------------------------------------

MATRIX_GRAPH = "harary:4,12"
MATRIX_SEED = 3
MATRIX_SHARDS = 2

# (program, model) pairs the registry itself rules out: the CDS-packing
# driver validates its model and accepts V-CONGEST / clique only.
_MATRIX_EXCLUDED = {
    ("cds_packing", Model.E_CONGEST),
}


def _matrix_cases():
    from repro.simulator.scenario import PROGRAM_REGISTRY

    cases = []
    for name in sorted(PROGRAM_REGISTRY):
        for model in (
            Model.V_CONGEST, Model.E_CONGEST, Model.CONGESTED_CLIQUE
        ):
            if (name, model) not in _MATRIX_EXCLUDED:
                cases.append((name, model))
    return cases


def _run_matrix_case(program: str, model: Model, engine: str):
    """One pinned-seed scenario run, reduced to comparable bytes."""
    from repro.simulator.scenario import Scenario

    run = Scenario(
        topology=MATRIX_GRAPH,
        program=program,
        model=model,
        seed=MATRIX_SEED,
        trace=True,
        engine=engine,
        shards=MATRIX_SHARDS if engine == "sharded" else None,
        max_rounds=2000,
    ).run()
    metrics = run.result.metrics
    return {
        "outputs": list(run.result.outputs.items()),  # value AND order
        "halted": run.result.halted,
        "metrics": (
            metrics.rounds,
            metrics.messages,
            metrics.bits,
            metrics.max_message_bits,
            sorted(metrics.phase_rounds.items()),
        ),
        # repr per event == the rendered bytes of the transcript.
        "trace": [repr(event) for event in run.trace.events],
    }


class TestDifferentialMatrix:
    """Every registered scenario program, under every transport it can
    run on, must behave *byte-identically* on every engine. The indexed
    loop is the baseline; the reference loop covers the paper's two
    models (it predates the clique transport); the sharded engine
    covers everything."""

    @pytest.mark.parametrize(
        "program,model",
        _matrix_cases(),
        ids=lambda value: getattr(value, "value", value),
    )
    def test_reference_matches_indexed(self, program, model):
        if model is Model.CONGESTED_CLIQUE:
            pytest.skip("the reference loop predates the clique transport")
        baseline = _run_matrix_case(program, model, "indexed")
        other = _run_matrix_case(program, model, "reference")
        assert other == baseline

    @pytest.mark.skipif(not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON)
    @pytest.mark.parametrize(
        "program,model",
        _matrix_cases(),
        ids=lambda value: getattr(value, "value", value),
    )
    def test_sharded_matches_indexed(self, program, model):
        baseline = _run_matrix_case(program, model, "indexed")
        other = _run_matrix_case(program, model, "sharded")
        assert other == baseline

    @pytest.mark.skipif(not VECTORIZED_TESTS_OK, reason=VECTORIZED_SKIP_REASON)
    @pytest.mark.parametrize(
        "program,model",
        _matrix_cases(),
        ids=lambda value: getattr(value, "value", value),
    )
    def test_vectorized_matches_indexed(self, program, model):
        baseline = _run_matrix_case(program, model, "indexed")
        other = _run_matrix_case(program, model, "vectorized")
        assert other == baseline

    @pytest.mark.skipif(not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON)
    def test_sharded_identical_across_shard_counts(self):
        """The shard count is an execution detail: 1, 2, and 3 workers
        must all reproduce the indexed bytes."""
        from repro.simulator.scenario import Scenario

        baseline = _run_matrix_case("mis", Model.V_CONGEST, "indexed")
        for shards in (1, 2, 3):
            run = Scenario(
                topology=MATRIX_GRAPH,
                program="mis",
                model=Model.V_CONGEST,
                seed=MATRIX_SEED,
                trace=True,
                engine="sharded",
                shards=shards,
            ).run()
            assert list(run.result.outputs.items()) == baseline["outputs"]
            assert [repr(e) for e in run.trace.events] == baseline["trace"]


@pytest.mark.skipif(not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON)
class TestShardedFaultEquivalence:
    """Faulty runs shard identically: drop decisions derive from (seed,
    edge, round) — never from shard-local iteration order — and crash
    accounting matches the single-process loops."""

    def _both(self, plan_of, rng=5, horizon=18):
        graph = harary_graph(4, 14)
        results = {}
        for engine, shards in (("indexed", None), ("sharded", 3)):
            network = _network(graph, seed=2)
            runner = SyncRunner(
                network,
                rng=rng,
                fault_plan=plan_of(network),
                engine=engine,
                shards=shards,
            )
            results[engine] = runner.run(
                lambda v: RetransmittingFloodProgram(
                    network.node_id(v), horizon=horizon
                )
            )
        return results

    def test_iid_drops(self):
        runs = self._both(
            lambda net: FaultPlan(drop_probability=0.35, rng=11)
        )
        _assert_same_result(runs["indexed"], runs["sharded"])

    def test_drop_schedule(self):
        def plan(net):
            a, b, c = net.nodes[0], net.nodes[1], net.nodes[5]
            return FaultPlan(
                drop_schedule={(a, b): {1, 2, 3}, (c, a): {2}}
            )

        runs = self._both(plan)
        _assert_same_result(runs["indexed"], runs["sharded"])

    def test_crashes_with_drops(self):
        def plan(net):
            return FaultPlan(
                drop_probability=0.2,
                crash_rounds={net.nodes[3]: 2, net.nodes[7]: 0},
                rng=4,
            )

        runs = self._both(plan)
        _assert_same_result(runs["indexed"], runs["sharded"])

    def test_unseeded_plan_derives_from_run_seed(self):
        runs = self._both(lambda net: FaultPlan(drop_probability=0.4))
        _assert_same_result(runs["indexed"], runs["sharded"])


@pytest.mark.skipif(not VECTORIZED_TESTS_OK, reason=VECTORIZED_SKIP_REASON)
class TestVectorizedFaultEquivalence:
    """Faulted runs push the columnar engine onto its general path —
    drop decisions stay pure functions of (seed, edge, round), so the
    bytes must match the indexed loop exactly."""

    def _both(self, plan_of, rng=5, horizon=18):
        graph = harary_graph(4, 14)
        results = {}
        for engine in ("indexed", "vectorized"):
            network = _network(graph, seed=2)
            runner = SyncRunner(
                network,
                rng=rng,
                fault_plan=plan_of(network),
                engine=engine,
            )
            results[engine] = runner.run(
                lambda v: RetransmittingFloodProgram(
                    network.node_id(v), horizon=horizon
                )
            )
        return results

    def test_iid_drops(self):
        runs = self._both(
            lambda net: FaultPlan(drop_probability=0.35, rng=11)
        )
        _assert_same_result(runs["indexed"], runs["vectorized"])

    def test_drop_schedule(self):
        def plan(net):
            a, b, c = net.nodes[0], net.nodes[1], net.nodes[5]
            return FaultPlan(
                drop_schedule={(a, b): {1, 2, 3}, (c, a): {2}}
            )

        runs = self._both(plan)
        _assert_same_result(runs["indexed"], runs["vectorized"])

    def test_crashes_with_drops(self):
        def plan(net):
            return FaultPlan(
                drop_probability=0.2,
                crash_rounds={net.nodes[3]: 2, net.nodes[7]: 0},
                rng=4,
            )

        runs = self._both(plan)
        _assert_same_result(runs["indexed"], runs["vectorized"])

    def test_unseeded_plan_derives_from_run_seed(self):
        runs = self._both(lambda net: FaultPlan(drop_probability=0.4))
        _assert_same_result(runs["indexed"], runs["vectorized"])


@pytest.mark.skipif(not VECTORIZED_TESTS_OK, reason=VECTORIZED_SKIP_REASON)
class TestVectorizedCompositeEquivalence:
    """Composites chain many runs over one network, so they exercise the
    plane cache (interning table and in-CSR reused across runs) and the
    per-node RNG draw order end to end."""

    def _on_vectorized_and_indexed(self, run):
        results = {}
        for engine in ("indexed", "vectorized"):
            with engine_context(engine):
                results[engine] = run()
        return results

    def test_flood_extremum_and_leader(self):
        graph = harary_graph(4, 15)

        def run():
            network = _network(graph)
            values = {v: (network.node_id(v) * 3) % 50 for v in network.nodes}
            flood = flood_extremum(network, values)
            leader, election = elect_leader(network)
            return flood, leader, election

        runs = self._on_vectorized_and_indexed(run)
        flood_a, leader_a, el_a = runs["indexed"]
        flood_b, leader_b, el_b = runs["vectorized"]
        _assert_same_result(flood_a, flood_b)
        assert leader_a == leader_b
        _assert_same_result(el_a, el_b)

    def test_luby_mis_uses_identical_context_rngs(self):
        graph = harary_graph(4, 17)

        def run():
            network = _network(graph, seed=6)
            return luby_mis(network, rng=9)

        runs = self._on_vectorized_and_indexed(run)
        assert runs["indexed"][0] == runs["vectorized"][0]
        _assert_same_result(runs["indexed"][1], runs["vectorized"][1])

    def test_distributed_spanning_packing(self):
        from repro.core.spanning_packing_distributed import (
            distributed_spanning_packing,
        )

        graph = harary_graph(4, 12)

        def run():
            return distributed_spanning_packing(
                graph, rng=8, max_iterations=4
            )

        runs = self._on_vectorized_and_indexed(run)
        a, b = runs["indexed"], runs["vectorized"]
        assert a.iterations_per_part == b.iterations_per_part
        assert a.packing.size == b.packing.size
        assert len(a.packing.trees) == len(b.packing.trees)
        _assert_same_metrics(a.report.measured, b.report.measured)


# ----------------------------------------------------------------------
# The corrupted matrix: adversarial scenarios across every engine
# ----------------------------------------------------------------------

# Each row: (id, program, model, AdversaryPlan kwargs). Plans are built
# fresh per run (replay history is per-execution state); seeds derive
# from the scenario seed, so every engine binds the same plan seed.
_CORRUPTED_CASES = [
    (
        "flip-flood-vcongest",
        "retransmit-flood",
        Model.V_CONGEST,
        {"corruption_probability": 0.25, "kinds": ("flip",)},
    ),
    (
        "flip-flood-clique",
        "retransmit-flood",
        Model.CONGESTED_CLIQUE,
        {"corruption_probability": 0.25, "kinds": ("flip",)},
    ),
    (
        "allkinds-flood",
        "retransmit-flood",
        Model.V_CONGEST,
        {
            "corruption_probability": 0.3,
            "kinds": ("flip", "forge", "replay"),
        },
    ),
    (
        "budgeted-coded-flood",
        "flood-vote",
        Model.V_CONGEST,
        {
            "corruption_probability": 0.5,
            "kinds": ("flip",),
            "budget": 9,
            "round_budget": 3,
        },
    ),
    (
        "targeted-gossip",
        "gossip-checksum",
        Model.V_CONGEST,
        {
            "corruption_probability": 1.0,
            "kinds": ("flip", "forge"),
            # Circulant edges of harary:4,12 — real links of the graph.
            "targets": frozenset({(0, 1), (1, 0), (0, 2)}),
        },
    ),
]


def _run_corrupted_case(program: str, model: Model, engine: str, plan_kwargs):
    from repro.simulator.adversary import AdversaryPlan
    from repro.simulator.scenario import Scenario

    run = Scenario(
        topology=MATRIX_GRAPH,
        program=program,
        model=model,
        seed=MATRIX_SEED,
        adversary_plan=AdversaryPlan(**plan_kwargs),
        trace=True,
        engine=engine,
        shards=MATRIX_SHARDS if engine == "sharded" else None,
        max_rounds=2000,
    ).run()
    metrics = run.result.metrics
    return {
        "outputs": list(run.result.outputs.items()),
        "halted": run.result.halted,
        "metrics": (
            metrics.rounds,
            metrics.messages,
            metrics.bits,
            metrics.max_message_bits,
            sorted(metrics.phase_rounds.items()),
        ),
        "trace": [repr(event) for event in run.trace.events],
    }


class TestCorruptedDifferentialMatrix:
    """The oracle discipline extended to hostile channels: every
    corrupted scenario must behave byte-identically on every engine —
    the corruption decisions, budget slots, and replay histories are
    part of the determinism contract, not an excuse to diverge."""

    @pytest.mark.parametrize(
        "program,model,plan_kwargs",
        [(p, m, k) for _, p, m, k in _CORRUPTED_CASES],
        ids=[case_id for case_id, _, _, _ in _CORRUPTED_CASES],
    )
    def test_reference_matches_indexed(self, program, model, plan_kwargs):
        if model is Model.CONGESTED_CLIQUE:
            pytest.skip("the reference loop predates the clique transport")
        baseline = _run_corrupted_case(program, model, "indexed", plan_kwargs)
        other = _run_corrupted_case(program, model, "reference", plan_kwargs)
        assert other == baseline

    @pytest.mark.skipif(not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON)
    @pytest.mark.parametrize(
        "program,model,plan_kwargs",
        [(p, m, k) for _, p, m, k in _CORRUPTED_CASES],
        ids=[case_id for case_id, _, _, _ in _CORRUPTED_CASES],
    )
    def test_sharded_matches_indexed(self, program, model, plan_kwargs):
        baseline = _run_corrupted_case(program, model, "indexed", plan_kwargs)
        other = _run_corrupted_case(program, model, "sharded", plan_kwargs)
        assert other == baseline

    @pytest.mark.skipif(not VECTORIZED_TESTS_OK, reason=VECTORIZED_SKIP_REASON)
    @pytest.mark.parametrize(
        "program,model,plan_kwargs",
        [(p, m, k) for _, p, m, k in _CORRUPTED_CASES],
        ids=[case_id for case_id, _, _, _ in _CORRUPTED_CASES],
    )
    def test_vectorized_matches_indexed(self, program, model, plan_kwargs):
        baseline = _run_corrupted_case(program, model, "indexed", plan_kwargs)
        other = _run_corrupted_case(
            program, model, "vectorized", plan_kwargs
        )
        assert other == baseline

    def test_corruption_changes_the_clean_run(self):
        """The matrix rows are not vacuous: the hostile run differs from
        the clean run of the same seed."""
        clean = _run_matrix_case(
            "retransmit-flood", Model.V_CONGEST, "indexed"
        )
        hostile = _run_corrupted_case(
            "retransmit-flood",
            Model.V_CONGEST,
            "indexed",
            {"corruption_probability": 0.25, "kinds": ("flip",)},
        )
        assert hostile["outputs"] != clean["outputs"]


# ----------------------------------------------------------------------
# The shard-count hostile matrix: shards {2, 3} × {plain, faulted,
# corrupted}, byte-compared transcripts
# ----------------------------------------------------------------------


def _run_hostile_case(
    engine: str,
    shards,
    *,
    faulted: bool = False,
    corrupted: bool = False,
    program: str = "retransmit-flood",
):
    """One pinned-seed run with optional hostile machinery attached.

    Plans are built fresh per run: drop decisions and replay histories
    are per-execution state, and both derive their RNG streams from the
    scenario seed, so every engine binds identical randomness.
    """
    from repro.simulator.adversary import AdversaryPlan
    from repro.simulator.scenario import Scenario

    run = Scenario(
        topology=MATRIX_GRAPH,
        program=program,
        model=Model.V_CONGEST,
        seed=MATRIX_SEED,
        fault_plan=(
            FaultPlan(drop_probability=0.3, rng=11) if faulted else None
        ),
        adversary_plan=(
            AdversaryPlan(corruption_probability=0.25, kinds=("flip",))
            if corrupted
            else None
        ),
        trace=True,
        engine=engine,
        shards=shards if engine == "sharded" else None,
        max_rounds=2000,
    ).run()
    metrics = run.result.metrics
    return {
        "outputs": list(run.result.outputs.items()),
        "halted": run.result.halted,
        "metrics": (
            metrics.rounds,
            metrics.messages,
            metrics.bits,
            metrics.max_message_bits,
            sorted(metrics.phase_rounds.items()),
        ),
        "trace": [repr(event) for event in run.trace.events],
    }


@pytest.mark.skipif(not SHARDED_TESTS_OK, reason=SHARDED_SKIP_REASON)
class TestShardCountHostileMatrix:
    """The columnar barrier under every shard count it advertises: 2 and
    3 workers × {plain, faulted, corrupted} must reproduce the indexed
    transcript byte for byte. Hostile rounds are exactly where a worker
    falls back from the columnar fast path to the scalar export loop, so
    this matrix pins the seam between the two."""

    @pytest.mark.parametrize(
        "faulted,corrupted",
        [(False, False), (True, False), (False, True)],
        ids=["plain", "faulted", "corrupted"],
    )
    @pytest.mark.parametrize("shards", (2, 3))
    def test_sharded_matches_indexed(self, shards, faulted, corrupted):
        baseline = _run_hostile_case(
            "indexed", None, faulted=faulted, corrupted=corrupted
        )
        other = _run_hostile_case(
            "sharded", shards, faulted=faulted, corrupted=corrupted
        )
        assert other == baseline

    @pytest.mark.parametrize("shards", (2, 3))
    def test_addressed_traffic_matches_indexed(self, shards):
        """BFS parent-pointer traffic is dict-addressed, forcing the
        columnar worker onto its general (addressed) merge path."""
        baseline = _run_hostile_case("indexed", None, program="bfs")
        other = _run_hostile_case("sharded", shards, program="bfs")
        assert other == baseline
