"""bench-smoke: every benchmark entry point must import and run.

The benchmark modules are not collected by the default test run (their
files do not match ``test_*.py``), so API drift used to rot them
silently. Each module now exposes a ``smoke()`` entry point that runs
its experiment's code path on a tiny graph; this test imports and runs
every one of them, making benchmark drift a tier-1 failure.

Deselect with ``-m "not bench_smoke"`` when iterating on unrelated code.
"""

from __future__ import annotations

import importlib
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_MODULES = sorted(path.stem for path in BENCH_DIR.glob("bench_*.py"))

if str(REPO_ROOT) not in sys.path:  # `benchmarks` is a namespace package
    sys.path.insert(0, str(REPO_ROOT))


def test_benchmark_modules_discovered():
    # The experiment index spans E1..E22 + figures + ablations; if this
    # shrinks, files were deleted without updating the CLI index.
    assert len(BENCH_MODULES) >= 22


@pytest.mark.bench_smoke
@pytest.mark.parametrize("name", BENCH_MODULES)
def test_bench_entry_point_runs_on_tiny_graph(name):
    module = importlib.import_module(f"benchmarks.{name}")
    assert hasattr(module, "smoke"), (
        f"benchmarks/{name}.py has no smoke() entry point — every "
        "benchmark module must stay runnable on a tiny graph"
    )
    module.smoke()
