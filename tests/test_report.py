"""Tests for the markdown report generator."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.report import (
    full_report,
    measure_graph,
    render_markdown_table,
)
from repro.graphs.generators import harary_graph


class TestMarkdownTable:
    def test_basic_shape(self):
        table = render_markdown_table(
            ["a", "b"], [[1, 2.5], ["x", "y"]]
        )
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.500 |"
        assert lines[3] == "| x | y |"

    def test_empty_rows(self):
        table = render_markdown_table(["only"], [])
        assert table.splitlines() == ["| only |", "|---|"]


class TestMeasureGraph:
    def test_headline_quantities(self):
        graph = harary_graph(4, 16)
        row = measure_graph(graph, "h", rng=3)
        assert row.n == 16
        assert row.k == 4
        assert row.lam == 4
        assert 0 < row.cds_size <= row.k
        assert 0 < row.spanning_size <= row.lam
        assert row.tutte_bound == 2
        lower, upper = row.estimate_interval
        assert lower - 1e-9 <= row.k <= upper + 1e-9
        assert row.broadcast_throughput > 0

    def test_deterministic(self):
        graph = harary_graph(4, 12)
        first = measure_graph(graph, "g", rng=11)
        second = measure_graph(graph, "g", rng=11)
        assert first == second


class TestFullReport:
    def test_sections_and_rows(self):
        report = full_report(
            [("h1", harary_graph(4, 12)), ("h2", harary_graph(6, 14))],
            rng=5,
        )
        assert "# repro measurement report" in report
        assert "## Theorem 1.1/1.2" in report
        assert "## Theorem 1.3" in report
        assert "## Corollary 1.7" in report
        assert "## Corollary 1.4" in report
        assert report.count("| h1 |") == 4  # one row per section
        assert report.count("| h2 |") == 4

    def test_report_is_valid_markdown_tables(self):
        report = full_report([("g", harary_graph(4, 12))], rng=7)
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
