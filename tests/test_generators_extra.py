"""Tests for the extended graph families (expander/bottleneck/geometric)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graphs.connectivity import edge_connectivity, vertex_connectivity
from repro.graphs.generators import (
    barbell_bottleneck,
    circulant_expander,
    random_geometric_connected,
)


class TestCirculantExpander:
    def test_default_jumps_structure(self):
        graph = circulant_expander(32)
        assert graph.number_of_nodes() == 32
        assert nx.is_connected(graph)
        # jumps 1, 2, 4 → 6-regular → connectivity 6 for circulants.
        degrees = {d for _, d in graph.degree()}
        assert degrees == {6}
        assert vertex_connectivity(graph) == 6

    def test_small_diameter(self):
        graph = circulant_expander(64)
        assert nx.diameter(graph) <= 10

    def test_explicit_jumps(self):
        graph = circulant_expander(12, jumps=[1, 3])
        assert vertex_connectivity(graph) == 4
        assert graph.has_edge(0, 3)
        assert graph.has_edge(0, 11)

    def test_duplicate_jumps_deduplicated(self):
        graph = circulant_expander(10, jumps=[1, 1, 2])
        assert {d for _, d in graph.degree()} == {4}

    def test_rejects_tiny_n(self):
        with pytest.raises(GraphValidationError):
            circulant_expander(2)

    def test_rejects_bad_jumps(self):
        with pytest.raises(GraphValidationError):
            circulant_expander(10, jumps=[0])
        with pytest.raises(GraphValidationError):
            circulant_expander(10, jumps=[9])


class TestBarbellBottleneck:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_connectivity_is_exactly_k(self, k):
        graph = barbell_bottleneck(k, 12)
        assert vertex_connectivity(graph) == k
        assert edge_connectivity(graph) == k

    def test_bridge_edges_are_the_min_cut(self):
        k, blob = 3, 12
        graph = barbell_bottleneck(k, blob)
        without_bridges = graph.copy()
        without_bridges.remove_edges_from(
            [(i, blob + i) for i in range(k)]
        )
        assert not nx.is_connected(without_bridges)

    def test_blobs_are_internally_better_connected(self):
        graph = barbell_bottleneck(2, 10)
        left = graph.subgraph(range(10))
        assert vertex_connectivity(left.copy()) > 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphValidationError):
            barbell_bottleneck(0, 10)
        with pytest.raises(GraphValidationError):
            barbell_bottleneck(5, 5)


class TestRandomGeometric:
    def test_connected_and_clean(self):
        graph = random_geometric_connected(30, 0.3, rng=1)
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 30
        # Position attributes are stripped (payload-size hygiene).
        for _, data in graph.nodes(data=True):
            assert "pos" not in data

    def test_deterministic_under_seed(self):
        first = random_geometric_connected(25, 0.3, rng=9)
        second = random_geometric_connected(25, 0.3, rng=9)
        assert set(first.edges()) == set(second.edges())

    def test_larger_radius_denser(self):
        sparse = random_geometric_connected(30, 0.25, rng=3)
        dense = random_geometric_connected(30, 0.6, rng=3)
        assert dense.number_of_edges() > sparse.number_of_edges()

    def test_impossible_radius_raises(self):
        with pytest.raises(GraphValidationError):
            random_geometric_connected(50, 0.01, rng=1, max_tries=3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphValidationError):
            random_geometric_connected(1, 0.5)
        with pytest.raises(GraphValidationError):
            random_geometric_connected(10, 0.0)


class TestFamiliesThroughThePipeline:
    """The new families must flow through the main decomposition APIs."""

    def test_cds_packing_on_circulant(self):
        from repro.core.cds_packing import fractional_cds_packing

        graph = circulant_expander(24)
        result = fractional_cds_packing(graph, rng=3)
        result.packing.verify()
        assert result.packing.size > 0

    def test_spanning_packing_on_barbell(self):
        from repro.core.spanning_packing import fractional_spanning_tree_packing

        graph = barbell_bottleneck(3, 10)
        packing = fractional_spanning_tree_packing(graph, rng=5).packing
        packing.verify()
        # λ = 3 → Tutte bound 1; the packing cannot beat λ.
        assert 0 < packing.size <= 3

    def test_vc_approx_on_geometric(self):
        from repro.core.vertex_connectivity import (
            approximate_vertex_connectivity,
        )
        from repro.graphs.connectivity import vertex_connectivity

        graph = random_geometric_connected(24, 0.35, rng=7)
        k = vertex_connectivity(graph)
        estimate = approximate_vertex_connectivity(graph, rng=7)
        assert estimate.contains(k)
