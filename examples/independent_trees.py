#!/usr/bin/env python
"""Section 1.4.1: an algorithmic approximation of the Zehavi–Itai
conjecture via vertex-disjoint dominating trees.

Zehavi and Itai (1989) conjectured every k-connected graph has k vertex
independent spanning trees; it is open for k >= 4. The paper's integral
dominating tree packing gives Omega(k/log^2 n) such trees algorithmically:
take vertex-disjoint dominating trees (here via
:meth:`repro.api.GraphSession.pack_integral`), attach all other vertices
as leaves, and the root-to-v paths of different trees are internally
vertex-disjoint — for *any* root.

Run:  python examples/independent_trees.py
"""

from repro.api import GraphSession
from repro.core.independent_trees import (
    independent_trees_from_packing,
    verify_vertex_independent,
)


def main() -> None:
    session = GraphSession("fat_cycle:8,4")  # vertex connectivity 16
    graph = session.graph
    k = session.exact_vertex_connectivity()
    print(f"graph: n={session.n}, k={k}")

    result = session.pack_integral(kind="cds", class_factor=3.0, seed=17)
    print(f"vertex-disjoint dominating trees found: {result.payload['size']} "
          f"[paper: Omega(k/log^2 n)]")

    for root in list(graph.nodes())[:3]:
        trees = independent_trees_from_packing(result.raw.packing, root=root)
        ok = verify_vertex_independent(graph, trees, root)
        print(f"  root {root}: {len(trees)} vertex independent spanning "
              f"trees -> independence verified: {ok}")

    print("\n(each dominating tree keeps its own internal vertices, so the "
          "\n root-to-v paths through different trees never share internals)")

    # For k = 2 the conjecture is a theorem with an exact classical
    # construction (Itai–Rodeh [28], via st-numbering); the library
    # implements it for comparison with the packing-based approximation.
    from repro.core.st_numbering import (
        itai_rodeh_independent_trees,
        verify_independent_pair,
    )

    print("\nexact k=2 case (Itai-Rodeh st-numbering construction):")
    for root in list(graph.nodes())[:3]:
        down, up = itai_rodeh_independent_trees(graph, root)
        ok = verify_independent_pair(graph, root, down, up)
        print(f"  root {root}: 2 independent spanning trees -> "
              f"verified: {ok}")


if __name__ == "__main__":
    main()
