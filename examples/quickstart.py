#!/usr/bin/env python
"""Quickstart: decompose a graph's connectivity through one session.

Opens a :class:`repro.api.GraphSession` on a well-connected graph —
canonicalized exactly once — computes both decompositions of the paper,
verifies them against the Section 2 definitions, and prints the
headline quantities of Theorems 1.1 and 1.3.

Run:  python examples/quickstart.py
"""

import math

from repro.api import GraphSession
from repro.core.spanning_packing import MwuParameters


def main() -> None:
    # A Harary graph: vertex and edge connectivity exactly 8. One
    # session = one canonicalization for everything below.
    session = GraphSession("harary:8,40")
    n = session.n
    k = session.exact_vertex_connectivity()
    lam = session.exact_edge_connectivity()
    print(f"graph: n={n}, m={session.m}, k={k}, lambda={lam}")
    print(f"session fingerprint: {session.fingerprint}")

    # --- Theorem 1.1/1.2: fractional dominating tree packing ---------
    result = session.pack_cds(k=k, seed=1)
    packing = result.raw.packing
    packing.verify()  # raises if any Section 2 constraint fails
    memberships = packing.trees_per_node()
    print("\nfractional dominating tree packing (Theorem 1.1/1.2):")
    print(f"  trees:            {result.payload['n_trees']}")
    print(f"  size (sum of w):  {result.payload['size']:.3f}   "
          f"[paper: Omega(k/log n) = Omega({k / math.log(n):.2f})]")
    print(f"  max node load:    {result.payload['max_node_load']:.3f}  "
          f"(must be <= 1)")
    print(f"  trees per node:   max {max(memberships.values())}   "
          f"[paper: O(log n)]")
    print(f"  max tree diam:    {packing.max_diameter()}   "
          f"[paper: O~(n/k) = O~({n / k:.1f})]")

    # --- Theorem 1.3: fractional spanning tree packing ----------------
    sp = session.pack_spanning(params=MwuParameters(epsilon=0.15), seed=2)
    sp.raw.packing.verify()
    print("\nfractional spanning tree packing (Theorem 1.3):")
    print(f"  distinct trees:   {sp.payload['n_trees']}")
    print(f"  size:             {sp.payload['size']:.3f}   "
          f"[paper: ceil((lambda-1)/2)(1-eps) = "
          f"{sp.payload['target']}*(1-0.15) = "
          f"{sp.payload['target'] * 0.85:.2f}]")
    print(f"  max edge load:    {sp.payload['max_edge_load']:.3f}  (<= 1)")
    print(f"  MWU iterations:   {sp.payload['mwu_iterations']}   "
          f"[paper: O(log^3 n)]")

    # Both constructions shared one canonicalization:
    print(f"\nsession stats: {session.stats}")

    # Every envelope serializes losslessly — the JSON below is what the
    # batch executor streams per job:
    print("\nenvelope (JSON, first 200 chars):")
    print(f"  {result.to_json()[:200]}...")


if __name__ == "__main__":
    main()
