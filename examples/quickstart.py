#!/usr/bin/env python
"""Quickstart: decompose a graph's connectivity into tree packings.

Builds a well-connected graph, computes both decompositions of the paper,
verifies them against the Section 2 definitions, and prints the headline
quantities of Theorems 1.1 and 1.3.

Run:  python examples/quickstart.py
"""

import math

from repro.core.cds_packing import fractional_cds_packing
from repro.core.spanning_packing import (
    MwuParameters,
    fractional_spanning_tree_packing,
)
from repro.graphs.connectivity import edge_connectivity, vertex_connectivity
from repro.graphs.generators import harary_graph


def main() -> None:
    # A Harary graph: vertex and edge connectivity exactly 8.
    graph = harary_graph(8, 40)
    n = graph.number_of_nodes()
    k = vertex_connectivity(graph)
    lam = edge_connectivity(graph)
    print(f"graph: n={n}, m={graph.number_of_edges()}, k={k}, lambda={lam}")

    # --- Theorem 1.1/1.2: fractional dominating tree packing ---------
    result = fractional_cds_packing(graph, k=k, rng=1)
    packing = result.packing
    packing.verify()  # raises if any Section 2 constraint fails
    memberships = packing.trees_per_node()
    print("\nfractional dominating tree packing (Theorem 1.1/1.2):")
    print(f"  trees:            {len(packing)}")
    print(f"  size (sum of w):  {packing.size:.3f}   "
          f"[paper: Omega(k/log n) = Omega({k / math.log(n):.2f})]")
    print(f"  max node load:    {packing.max_node_load():.3f}  (must be <= 1)")
    print(f"  trees per node:   max {max(memberships.values())}   "
          f"[paper: O(log n)]")
    print(f"  max tree diam:    {packing.max_diameter()}   "
          f"[paper: O~(n/k) = O~({n / k:.1f})]")

    # --- Theorem 1.3: fractional spanning tree packing ----------------
    sp = fractional_spanning_tree_packing(
        graph, params=MwuParameters(epsilon=0.15), rng=2
    )
    sp.packing.verify()
    print("\nfractional spanning tree packing (Theorem 1.3):")
    print(f"  distinct trees:   {len(sp.packing)}")
    print(f"  size:             {sp.size:.3f}   "
          f"[paper: ceil((lambda-1)/2)(1-eps) = "
          f"{sp.target}*(1-0.15) = {sp.target * 0.85:.2f}]")
    print(f"  max edge load:    {sp.packing.max_edge_load():.3f}  (<= 1)")
    print(f"  MWU iterations:   {max(t.iterations for t in sp.traces)}   "
          f"[paper: O(log^3 n)]")


if __name__ == "__main__":
    main()
