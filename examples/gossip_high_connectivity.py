#!/usr/bin/env python
"""Appendix A's motivating scenario: gossiping in a well-connected network.

"If the network has vertex connectivity sqrt(n), prior to this work the
O(n)-round solution remained the best known bound." This example runs the
classical gossip (one message per node) two ways:

1. naive single-tree broadcast — every message floods one BFS tree,
   serialized through the root's vertex capacity (the O(n)-round world);
2. the paper's way — decompose into Theta(k) dominating trees and
   parallelize messages across them (Corollary A.1: O~(n/k) rounds).

Run:  python examples/gossip_high_connectivity.py
"""

from repro.apps.gossip import gossip
from repro.core.cds_packing import PackingParameters, construct_cds_packing
from repro.core.tree_packing import (
    DominatingTreePacking,
    WeightedTree,
    spanning_tree_of,
)
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import random_regular_connected


def main() -> None:
    n, degree = 60, 24  # k >> log n: the regime the paper targets
    graph = random_regular_connected(degree, n, rng=3)
    k = vertex_connectivity(graph)
    n_messages, eta = 2 * n, 2
    print(f"network: n={n}, degree={degree}, vertex connectivity k={k}")
    print(f"gossip load: N={n_messages} messages, <= {eta} per node")

    # Baseline: a single spanning tree carries everything — every node
    # must relay every message, so steady-state throughput is 1 msg/round.
    single = DominatingTreePacking(
        graph, [WeightedTree(tree=spanning_tree_of(graph), weight=1.0, class_id=0)]
    )
    naive = gossip(single, n_messages=n_messages, max_per_node=eta, rng=4)
    print(f"\nnaive single-tree gossip:     {naive.rounds} rounds "
          f"(throughput {naive.broadcast.throughput:.2f} msg/round)")

    # The paper's decomposition: Theta(k) dominating trees, each node in
    # O(log n) of them, so each node relays only an O(log n / k) fraction.
    params = PackingParameters(class_factor=1.0, layer_factor=1)
    packing = construct_cds_packing(graph, k, params=params, rng=5).packing
    decomposed = gossip(packing, n_messages=n_messages, max_per_node=eta, rng=6)
    print(f"decomposed gossip ({len(packing)} trees): "
          f"{decomposed.rounds} rounds "
          f"(throughput {decomposed.broadcast.throughput:.2f} msg/round)")

    speedup = naive.rounds / decomposed.rounds
    print(f"\nspeedup from connectivity decomposition: {speedup:.2f}x")
    print(f"Corollary A.1 reference (eta + (N+n)/sigma): "
          f"{decomposed.reference_rounds:.1f} rounds")
    print("\n(The asymptotic gap is Theta(k / log n); at n=60 the log-n "
          "factor\n is ~4, so a 1.5-2x win here is exactly the predicted "
          "shape.)")


if __name__ == "__main__":
    main()
