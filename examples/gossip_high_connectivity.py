#!/usr/bin/env python
"""Appendix A's motivating scenario: gossiping in a well-connected network.

"If the network has vertex connectivity sqrt(n), prior to this work the
O(n)-round solution remained the best known bound." This example runs the
classical gossip (one message per node) two ways:

1. naive single-tree broadcast — every message floods one BFS tree,
   serialized through the root's vertex capacity (the O(n)-round world);
2. the paper's way — a :class:`repro.api.GraphSession` decomposes the
   graph into Theta(k) dominating trees and parallelizes messages
   across them (Corollary A.1: O~(n/k) rounds).

Run:  python examples/gossip_high_connectivity.py
"""

from repro.api import GraphSession
from repro.apps.gossip import gossip
from repro.core.cds_packing import PackingParameters
from repro.core.tree_packing import (
    DominatingTreePacking,
    WeightedTree,
    spanning_tree_of,
)


def main() -> None:
    n, degree = 60, 24  # k >> log n: the regime the paper targets
    session = GraphSession(f"regular:{degree},{n},3")
    k = session.exact_vertex_connectivity()
    n_messages, eta = 2 * n, 2
    print(f"network: n={n}, degree={degree}, vertex connectivity k={k}")
    print(f"gossip load: N={n_messages} messages, <= {eta} per node")

    # Baseline: a single spanning tree carries everything — every node
    # must relay every message, so steady-state throughput is 1 msg/round.
    graph = session.graph
    single = DominatingTreePacking(
        graph, [WeightedTree(tree=spanning_tree_of(graph), weight=1.0, class_id=0)]
    )
    naive = gossip(single, n_messages=n_messages, max_per_node=eta, rng=4)
    print(f"\nnaive single-tree gossip:     {naive.rounds} rounds "
          f"(throughput {naive.broadcast.throughput:.2f} msg/round)")

    # The paper's decomposition, through the session: Theta(k) dominating
    # trees (packed at seed 5), gossip routed over them (seed 6).
    params = PackingParameters(class_factor=1.0, layer_factor=1)
    decomposed = session.gossip(
        n_messages=n_messages, max_per_node=eta,
        seed=6, pack_seed=5, k=k, params=params,
    )
    n_trees = session.pack_cds(k=k, seed=5, params=params).payload["n_trees"]
    print(f"decomposed gossip ({n_trees} trees): "
          f"{decomposed.payload['rounds']} rounds "
          f"(throughput {decomposed.payload['throughput']:.2f} msg/round)")

    speedup = naive.rounds / decomposed.payload["rounds"]
    print(f"\nspeedup from connectivity decomposition: {speedup:.2f}x")
    print(f"Corollary A.1 reference (eta + (N+n)/sigma): "
          f"{decomposed.payload['reference_rounds']:.1f} rounds")
    print("\n(The asymptotic gap is Theta(k / log n); at n=60 the log-n "
          "factor\n is ~4, so a 1.5-2x win here is exactly the predicted "
          "shape.)")


if __name__ == "__main__":
    main()
