#!/usr/bin/env python
"""Appendix G: the set-disjointness lower bound machinery, end to end.

1. Build G(X, Y) and check Lemma G.4's cut dichotomy with exact oracles:
   kappa = 4 when |X∩Y| = 1, kappa >= w when X∩Y = ∅; diameter <= 3.
   (The constructed graphs go through :class:`repro.api.GraphSession`,
   which accepts prebuilt ``nx.Graph`` objects — the exact oracle and
   the estimate machinery run against the same canonical session.)
2. Run the Alice/Bob simulation of Lemma G.6 on a real protocol and
   verify the 2BT bit budget.
3. Decide disjointness by thresholding connectivity (Theorem G.2's
   reduction direction).

Run:  python examples/lowerbound_reduction.py
"""

import networkx as nx

from repro.api import GraphSession
from repro.graphs.connectivity import min_vertex_cut
from repro.lowerbounds.construction import build_g_xy, expected_min_cut
from repro.lowerbounds.disjointness import (
    decide_disjointness_via_connectivity,
    simulate_protocol_two_party,
)


def main() -> None:
    h, ell, w = 4, 3, 6

    print("case 1: X = {2,3}, Y = {3,4}  (intersection {3})")
    inst = build_g_xy(h=h, ell=ell, w=w, x_set={2, 3}, y_set={3, 4})
    session = GraphSession(inst.graph, label="G(X,Y) case 1")
    kappa = session.exact_vertex_connectivity()
    cut = min_vertex_cut(inst.graph)
    _, predicted = expected_min_cut(inst)
    print(f"  n={session.n}, "
          f"diameter={nx.diameter(inst.graph)} (Lemma G.4: <= 3)")
    print(f"  kappa = {kappa} (Lemma G.4: exactly 4)")
    print(f"  min cut = {sorted(map(str, cut))}")
    print(f"  predicted  {sorted(map(str, predicted))}  -> "
          f"{'match' if cut == predicted else 'MISMATCH'}")

    print("\ncase 2: X = {1,2}, Y = {3,4}  (disjoint)")
    inst2 = build_g_xy(h=h, ell=ell, w=w, x_set={1, 2}, y_set={3, 4})
    session2 = GraphSession(inst2.graph, label="G(X,Y) case 2")
    kappa2 = session2.exact_vertex_connectivity()
    print(f"  kappa = {kappa2} (Lemma G.4: >= w = {w})")

    print("\nreduction verdicts (disjoint iff kappa > 4):")
    for inst_, label in ((inst, "case 1"), (inst2, "case 2")):
        print(f"  {label}: disjoint = "
              f"{decide_disjointness_via_connectivity(inst_)}")

    print("\nLemma G.6 two-party simulation of a flooding protocol:")

    def protocol(node, rnd, inbox):
        return ("flood", len(inbox), rnd)

    for rounds in (1, 2, 3):
        sim = simulate_protocol_two_party(inst, protocol, rounds)
        print(f"  T={rounds}: {sim.bits_exchanged} bits exchanged "
              f"(budget 2BT = {sim.bit_budget}) -> "
              f"{'within' if sim.within_budget else 'EXCEEDED'}")


if __name__ == "__main__":
    main()
