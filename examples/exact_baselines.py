#!/usr/bin/env python
"""Cross-checking the decompositions against exact classical baselines.

The repository implements the classical comparators from scratch
(repro.baselines): Dinic max-flow, Even–Tarjan exact vertex
connectivity, Stoer–Wagner global min cut, and the Roskind–Tarjan
matroid-union packing of edge-disjoint spanning trees. This example
runs them side by side with the paper's decompositions, each computed
through a :class:`repro.api.GraphSession`:

* the exact spanning-tree packing number vs. the Tutte/Nash-Williams
  bound vs. the MWU fractional packing size (Theorem 1.3), and
* the exact vertex connectivity vs. the Corollary 1.7 estimate.

Run:  python examples/exact_baselines.py
"""

import math

from repro.api import GraphSession
from repro.baselines.mincut import stoer_wagner_min_cut
from repro.baselines.tree_packing_exact import (
    max_spanning_tree_packing,
    spanning_tree_packing_number,
)
from repro.baselines.vertex_connectivity_exact import (
    even_tarjan_vertex_connectivity,
)
from repro.graphs.generators import harary_graph


def spanning_side() -> None:
    print("=== edge connectivity side ===")
    header = (
        f"{'family':<18} {'lambda':>6} {'Tutte':>6} {'RT exact':>8} "
        f"{'MWU size':>8} {'load<=1+eps':>11}"
    )
    print(header)
    print("-" * len(header))
    for spec in ("harary:6,18", "hypercube:4", "fat_cycle:3,5"):
        session = GraphSession(spec)
        envelope = session.pack_spanning(seed=5)
        exact = spanning_tree_packing_number(session.graph)
        print(
            f"{spec:<18} {envelope.payload['lam']:>6} "
            f"{envelope.payload['target']:>6} {exact:>8} "
            f"{envelope.payload['size']:>8.2f} "
            f"{envelope.payload['max_edge_load']:>11.3f}"
        )

    # The exact trees are genuinely edge-disjoint and spanning:
    trees = max_spanning_tree_packing(harary_graph(6, 18))
    edges_used = sum(t.number_of_edges() for t in trees)
    print(
        f"\nRoskind–Tarjan on harary(6,18): {len(trees)} disjoint spanning "
        f"trees, {edges_used} edges used"
    )


def vertex_side() -> None:
    print("\n=== vertex connectivity side ===")
    header = (
        f"{'family':<18} {'k exact':>7} {'cut size':>8} "
        f"{'estimate interval':>20} {'contains k':>10}"
    )
    print(header)
    print("-" * len(header))
    for spec in ("harary:4,20", "clique_chain:4,5", "fat_cycle:3,6"):
        session = GraphSession(spec)
        k, cut = even_tarjan_vertex_connectivity(session.graph, with_cut=True)
        estimate = session.connectivity(seed=7)
        payload = estimate.payload
        interval = (
            f"[{payload['lower_bound']:.1f}, {payload['upper_bound']:.1f}]"
        )
        contains = payload["lower_bound"] <= k <= payload["upper_bound"]
        print(
            f"{spec:<18} {k:>7} {len(cut) if cut else '-':>8} "
            f"{interval:>20} {str(contains):>10}"
        )

    value, side = stoer_wagner_min_cut(harary_graph(4, 20))
    print(
        f"\nStoer–Wagner on harary(4,20): min cut weight {value:.0f}, "
        f"side size {len(side)}"
    )


def main() -> None:
    spanning_side()
    vertex_side()


if __name__ == "__main__":
    main()
