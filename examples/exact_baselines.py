#!/usr/bin/env python
"""Cross-checking the decompositions against exact classical baselines.

The repository implements the classical comparators from scratch
(repro.baselines): Dinic max-flow, Even–Tarjan exact vertex
connectivity, Stoer–Wagner global min cut, and the Roskind–Tarjan
matroid-union packing of edge-disjoint spanning trees. This example
runs them side by side with the paper's decompositions:

* the exact spanning-tree packing number vs. the Tutte/Nash-Williams
  bound vs. the MWU fractional packing size (Theorem 1.3), and
* the exact vertex connectivity vs. the Corollary 1.7 estimate.

Run:  python examples/exact_baselines.py
"""

import math

from repro.baselines.mincut import edge_connectivity_exact, stoer_wagner_min_cut
from repro.baselines.tree_packing_exact import (
    max_spanning_tree_packing,
    spanning_tree_packing_number,
)
from repro.baselines.vertex_connectivity_exact import (
    even_tarjan_vertex_connectivity,
)
from repro.core.spanning_packing import fractional_spanning_tree_packing
from repro.core.vertex_connectivity import approximate_vertex_connectivity
from repro.graphs.generators import clique_chain, fat_cycle, harary_graph, hypercube


def spanning_side() -> None:
    print("=== edge connectivity side ===")
    header = (
        f"{'family':<18} {'lambda':>6} {'Tutte':>6} {'RT exact':>8} "
        f"{'MWU size':>8} {'load<=1+eps':>11}"
    )
    print(header)
    print("-" * len(header))
    for name, graph in [
        ("harary(6,18)", harary_graph(6, 18)),
        ("hypercube(4)", hypercube(4)),
        ("fat_cycle(3,5)", fat_cycle(3, 5)),
    ]:
        lam = edge_connectivity_exact(graph)
        tutte = math.ceil((lam - 1) / 2)
        exact = spanning_tree_packing_number(graph)
        packing = fractional_spanning_tree_packing(graph, rng=5).packing
        print(
            f"{name:<18} {lam:>6} {tutte:>6} {exact:>8} "
            f"{packing.size:>8.2f} {packing.max_edge_load():>11.3f}"
        )

    # The exact trees are genuinely edge-disjoint and spanning:
    trees = max_spanning_tree_packing(harary_graph(6, 18))
    edges_used = sum(t.number_of_edges() for t in trees)
    print(
        f"\nRoskind–Tarjan on harary(6,18): {len(trees)} disjoint spanning "
        f"trees, {edges_used} edges used"
    )


def vertex_side() -> None:
    print("\n=== vertex connectivity side ===")
    header = (
        f"{'family':<18} {'k exact':>7} {'cut size':>8} "
        f"{'estimate interval':>20} {'contains k':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, graph in [
        ("harary(4,20)", harary_graph(4, 20)),
        ("clique_chain(4,5)", clique_chain(4, 5)),
        ("fat_cycle(3,6)", fat_cycle(3, 6)),
    ]:
        k, cut = even_tarjan_vertex_connectivity(graph, with_cut=True)
        estimate = approximate_vertex_connectivity(graph, rng=7)
        interval = f"[{estimate.lower_bound:.1f}, {estimate.upper_bound:.1f}]"
        print(
            f"{name:<18} {k:>7} {len(cut) if cut else '-':>8} "
            f"{interval:>20} {str(estimate.contains(k)):>10}"
        )

    value, side = stoer_wagner_min_cut(harary_graph(4, 20))
    print(
        f"\nStoer–Wagner on harary(4,20): min cut weight {value:.0f}, "
        f"side size {len(side)}"
    )


def main() -> None:
    spanning_side()
    vertex_side()


if __name__ == "__main__":
    main()
