#!/usr/bin/env python
"""Network coding vs. tree-packing broadcast (the Section 1 motivation).

The paper motivates connectivity decomposition by observing that RLNC's
coefficient vectors do not fit the CONGEST bit budget: coding over N
messages needs N coefficient bits per packet, so coded throughput decays
as the batch grows, while routing over a dominating tree packing keeps a
per-message header of only ceil(log2 N) bits.

This example packs once through a :class:`repro.api.GraphSession`, runs
both schemes on the same workloads, and prints the throughput race,
including the crossover point.

Run:  python examples/network_coding_vs_trees.py
"""

from repro.api import GraphSession
from repro.apps.network_coding import compare_with_tree_broadcast

BUDGET_BITS = 24


def main() -> None:
    session = GraphSession("harary:6,24")
    graph = session.graph
    k = session.exact_vertex_connectivity()
    print(
        f"graph: Harary n={session.n} k={k}, "
        f"message budget {BUDGET_BITS} bits"
    )

    pack = session.pack_cds(seed=3)
    packing = pack.raw.packing
    print(
        f"dominating tree packing: {pack.payload['n_trees']} trees, "
        f"size {pack.payload['size']:.2f}\n"
    )

    header = (
        f"{'N msgs':>7}  {'pkt bits':>8}  {'rounds/pkt':>10}  "
        f"{'coded thr':>9}  {'tree thr':>8}  {'winner':>7}"
    )
    print(header)
    print("-" * len(header))
    for batch in (12, 24, 72, 240, 480):
        sources = {i: i % session.n for i in range(batch)}
        comparison = compare_with_tree_broadcast(
            graph, packing, sources, budget_bits=BUDGET_BITS, rng=11
        )
        winner = "trees" if comparison.tree_advantage > 1 else "coding"
        print(
            f"{batch:>7}  {comparison.coded.packet_bits:>8}  "
            f"{comparison.coded.rounds_per_packet:>10}  "
            f"{comparison.coded_throughput:>9.3f}  "
            f"{comparison.tree_throughput:>8.3f}  {winner:>7}"
        )

    print(
        "\nAs the paper predicts, coding wins small batches (coefficients"
        "\nare cheap) but the O(N)-bit overhead eventually hands large"
        "\nbatches to the tree packing, whose header is O(log N)."
    )


if __name__ == "__main__":
    main()
