#!/usr/bin/env python
"""Run the Appendix B protocol on the V-CONGEST round simulator.

Shows the full distributed pipeline: the per-layer component
identification / bridging / matching phases, meta-round accounting, the
analytic Theorem B.2 bound for the substituted subroutine, and the
Appendix E tester validating a partition on the same simulator.

Run:  python examples/distributed_simulation.py
"""

from repro.core.cds_packing import PackingParameters
from repro.core.cds_packing_distributed import distributed_cds_packing
from repro.core.packing_tester import (
    cds_partition_test_centralized,
    distributed_cds_partition_test,
)
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import harary_graph
from repro.simulator.network import Network


def main() -> None:
    graph = harary_graph(6, 30)
    k = vertex_connectivity(graph)
    print(f"graph: n=30, k={k}; running Theorem B.1 on the simulator...")

    result = distributed_cds_packing(
        graph, k, params=PackingParameters(), rng=11
    )
    print(f"\npacking: {len(result.packing)} dominating trees, "
          f"size {result.result.size:.3f}")
    print(f"meta-rounds (virtual-graph rounds): {result.meta_rounds}")
    print(f"real V-CONGEST rounds (x3L multiplexing): "
          f"{result.real_round_estimate}")
    print(f"analytic Theorem B.2 subroutine bound: "
          f"{result.report.analytic_total():.0f} rounds")
    print("\nper-phase round breakdown:")
    for phase, rounds in sorted(result.report.measured.phase_rounds.items()):
        print(f"  {phase:<26} {rounds}")
    print(f"total messages: {result.report.measured.messages}, "
          f"total bits: {result.report.measured.bits}")

    # The Appendix E tester, on a partition of the same network.
    print("\nAppendix E tester on a 2-class partition:")
    class_of = {v: v % 2 for v in graph.nodes()}
    network = Network(graph, rng=12)
    central = cds_partition_test_centralized(graph, class_of, 2)
    distributed = distributed_cds_partition_test(network, class_of, 2, rng=13)
    print(f"  centralized verdict:  passed={central.passed}")
    print(f"  distributed verdict:  passed={distributed.passed} "
          f"in {distributed.rounds} rounds")


if __name__ == "__main__":
    main()
