#!/usr/bin/env python
"""Run the Appendix B protocol on the V-CONGEST round simulator.

Shows the full distributed pipeline through the :mod:`repro.api`
session layer: the per-layer component identification / bridging /
matching phases, meta-round accounting, the analytic Theorem B.2 bound
for the substituted subroutine, and the Appendix E tester validating a
partition on the same simulator.

Run:  python examples/distributed_simulation.py
"""

from repro.api import GraphSession
from repro.core.cds_packing import PackingParameters
from repro.core.packing_tester import (
    cds_partition_test_centralized,
    distributed_cds_partition_test,
)
from repro.simulator.network import Network


def main() -> None:
    session = GraphSession("harary:6,30")
    k = session.exact_vertex_connectivity()
    print(f"graph: n=30, k={k}; running Theorem B.1 on the simulator...")

    envelope = session.pack_cds_distributed(
        k, seed=11, params=PackingParameters()
    )
    result = envelope.raw
    print(f"\npacking: {envelope.payload['n_trees']} dominating trees, "
          f"size {envelope.payload['size']:.3f}")
    print(f"meta-rounds (virtual-graph rounds): "
          f"{envelope.payload['meta_rounds']}")
    print(f"real V-CONGEST rounds (x3L multiplexing): "
          f"{envelope.payload['real_round_estimate']}")
    print(f"analytic Theorem B.2 subroutine bound: "
          f"{envelope.payload['analytic_round_bound']:.0f} rounds")
    print("\nper-phase round breakdown:")
    for phase, rounds in sorted(result.report.measured.phase_rounds.items()):
        print(f"  {phase:<26} {rounds}")
    print(f"total messages: {envelope.payload['messages']}, "
          f"total bits: {envelope.payload['bits']}")

    # The Appendix E tester, on a partition of the same session graph
    # (the network shares the session's canonicalization).
    print("\nAppendix E tester on a 2-class partition:")
    graph = session.graph
    class_of = {v: v % 2 for v in graph.nodes()}
    network = Network(graph, rng=12, indexed=session.indexed)
    central = cds_partition_test_centralized(graph, class_of, 2)
    distributed = distributed_cds_partition_test(network, class_of, 2, rng=13)
    print(f"  centralized verdict:  passed={central.passed}")
    print(f"  distributed verdict:  passed={distributed.passed} "
          f"in {distributed.rounds} rounds")


if __name__ == "__main__":
    main()
