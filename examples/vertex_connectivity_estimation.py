#!/usr/bin/env python
"""Corollary 1.7: estimate vertex connectivity without computing it.

The dominating tree packing's size certifies a lower bound on k and
(w.h.p.) an O(log n) upper bound — the first near-linear-time
approximation toward the Aho–Hopcroft–Ullman conjecture. This example
sweeps graph families and compares the estimate against the exact
max-flow oracle.

Run:  python examples/vertex_connectivity_estimation.py
"""

from repro.core.vertex_connectivity import approximate_vertex_connectivity
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    torus_grid,
)

FAMILIES = [
    ("harary(4, 24)", lambda: harary_graph(4, 24)),
    ("harary(8, 32)", lambda: harary_graph(8, 32)),
    ("clique_chain(4, 7)", lambda: clique_chain(4, 7)),
    ("fat_cycle(3, 7)", lambda: fat_cycle(3, 7)),
    ("hypercube(5)", lambda: hypercube(5)),
    ("torus(5, 6)", lambda: torus_grid(5, 6)),
]


def main() -> None:
    header = f"{'family':<20} {'true k':>7} {'lower':>7} {'upper':>8} {'ok?':>5}"
    print(header)
    print("-" * len(header))
    for name, builder in FAMILIES:
        graph = builder()
        k_true = vertex_connectivity(graph)  # the expensive oracle
        est = approximate_vertex_connectivity(graph, rng=7)  # Õ(m)
        ok = "yes" if est.contains(k_true) else "NO"
        print(
            f"{name:<20} {k_true:>7} {est.lower_bound:>7.1f} "
            f"{est.upper_bound:>8.1f} {ok:>5}"
        )
    print("\nlower bound is *certified* (any packing of size s implies "
          "k >= s);\nupper bound holds w.h.p. by Theorem 1.1's "
          "Omega(k/log n) guarantee.")


if __name__ == "__main__":
    main()
