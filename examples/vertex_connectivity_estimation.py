#!/usr/bin/env python
"""Corollary 1.7: estimate vertex connectivity without computing it.

The dominating tree packing's size certifies a lower bound on k and
(w.h.p.) an O(log n) upper bound — the first near-linear-time
approximation toward the Aho–Hopcroft–Ullman conjecture. This example
sweeps graph families through :class:`repro.api.GraphSession` (one
session per family: the exact oracle and the estimate share the same
canonical graph) and compares estimate against exact.

Run:  python examples/vertex_connectivity_estimation.py
"""

from repro.api import GraphSession

FAMILIES = [
    "harary:4,24",
    "harary:8,32",
    "clique_chain:4,7",
    "fat_cycle:3,7",
    "hypercube:5",
    "torus:5,6",
]


def main() -> None:
    header = f"{'family':<20} {'true k':>7} {'lower':>7} {'upper':>8} {'ok?':>5}"
    print(header)
    print("-" * len(header))
    for spec in FAMILIES:
        session = GraphSession(spec)
        estimate = session.connectivity(seed=7, exact=True)  # Õ(m) + oracle
        payload = estimate.payload
        k_true = payload["exact_k"]
        ok = (
            "yes"
            if payload["lower_bound"] <= k_true <= payload["upper_bound"]
            else "NO"
        )
        print(
            f"{spec:<20} {k_true:>7} {payload['lower_bound']:>7.1f} "
            f"{payload['upper_bound']:>8.1f} {ok:>5}"
        )
    print("\nlower bound is *certified* (any packing of size s implies "
          "k >= s);\nupper bound holds w.h.p. by Theorem 1.1's "
          "Omega(k/log n) guarantee.")


if __name__ == "__main__":
    main()
