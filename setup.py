"""Compatibility shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation`` on offline
machines where PEP 517 editable installs would fail for lack of a wheel
builder.
"""

from setuptools import setup

setup()
